//! Fixture-based tests: every rule has a fixture exercising the
//! positive case, inline suppression, and (for Rust rules) the
//! built-in allowlist. Fixtures live in `tests/fixtures/`, which the
//! workspace walker skips — they must never fail the real repo.

use steelcheck::manifest;
use steelcheck::report::Finding;
use steelcheck::rules::{ALLOWLIST, ALL_RULES};
use steelcheck::scan_source;

fn lines_for(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn r1_nondet_collections_fixture() {
    let src = include_str!("fixtures/r1_nondet_collections.rs");
    let f = scan_source("crates/netsim/src/fixture.rs", src);
    assert_eq!(lines_for(&f, "nondet-collections"), vec![4, 6, 8, 13]);
    // Everything found is R1; strings/comments and suppressed sites are silent.
    assert!(f.iter().all(|f| f.rule == "nondet-collections"), "{f:?}");
}

#[test]
fn r1_fixture_clean_in_bench() {
    let src = include_str!("fixtures/r1_nondet_collections.rs");
    let f = scan_source("crates/bench/src/fixture.rs", src);
    assert!(
        lines_for(&f, "nondet-collections").is_empty(),
        "bench is exempt from R1: {f:?}"
    );
    // With R1 skipped entirely, the fixture's allow(nondet-collections)
    // directives excuse nothing — the audit flags them as stale.
    assert!(
        f.iter().all(|x| x.rule == "unused-suppression"),
        "only the stale-directive audit should fire here: {f:?}"
    );
    assert!(!f.is_empty());
}

#[test]
fn r2_wall_clock_fixture() {
    let src = include_str!("fixtures/r2_wall_clock.rs");
    let f = scan_source("crates/rtnet/src/fixture.rs", src);
    assert_eq!(lines_for(&f, "wall-clock"), vec![3, 6, 10, 11, 17]);
}

#[test]
fn r3_unwrap_fixture() {
    let src = include_str!("fixtures/r3_unwrap.rs");
    let f = scan_source("crates/vplc/src/fixture.rs", src);
    assert_eq!(lines_for(&f, "unwrap-in-lib"), vec![4, 8]);
}

#[test]
fn r3_does_not_apply_outside_library_code() {
    let src = include_str!("fixtures/r3_unwrap.rs");
    for rel in [
        "tests/fixture.rs",
        "examples/fixture.rs",
        "crates/vplc/src/bin/tool.rs",
    ] {
        let f = scan_source(rel, src);
        assert!(
            lines_for(&f, "unwrap-in-lib").is_empty(),
            "{rel} should be exempt from R3: {f:?}"
        );
    }
}

#[test]
fn r5_float_fixture() {
    let src = include_str!("fixtures/r5_float.rs");
    let f = scan_source("crates/mlnet/src/fixture.rs", src);
    assert_eq!(lines_for(&f, "float-hygiene"), vec![4, 8, 12]);
}

#[test]
fn r5_simtime_cast_allowed_in_stats_module() {
    let src = include_str!("fixtures/r5_float.rs");
    let f = scan_source("crates/netsim/src/stats.rs", src);
    // The two float-equality findings remain; the cast on line 12 does not.
    assert_eq!(lines_for(&f, "float-hygiene"), vec![4, 8]);
}

#[test]
fn allowlisted_file_is_exempt_for_its_rule_only() {
    let entry = &ALLOWLIST[0];
    assert_eq!(entry.rule, "float-hygiene");
    let f = scan_source(entry.path, include_str!("fixtures/r5_float.rs"));
    assert!(
        lines_for(&f, "float-hygiene").is_empty(),
        "allowlisted path must be exempt: {f:?}"
    );
    // The allowlist is per-rule: R1 still fires on the same file.
    let f = scan_source(entry.path, "use std::collections::HashMap;");
    assert_eq!(lines_for(&f, "nondet-collections"), vec![1]);
}

#[test]
fn r6_thread_fixture() {
    let src = include_str!("fixtures/r6_thread.rs");
    let f = scan_source("crates/netsim/src/fixture.rs", src);
    // `use std::thread` (3), Mutex + RwLock (4), mpsc (5), AtomicUsize
    // (6), `std::thread::spawn` (16). The suppressed AtomicU64 (9), the
    // `thread` parameter (11), `Arc` (19) and the string literal (23)
    // are silent.
    assert_eq!(lines_for(&f, "thread-outside-exec"), vec![3, 4, 4, 5, 6, 16]);
}

#[test]
fn r6_exempt_in_execution_layer() {
    let src = include_str!("fixtures/r6_thread.rs");
    for rel in ["crates/steelpar/src/fixture.rs", "crates/bench/src/fixture.rs"] {
        let f = scan_source(rel, src);
        assert!(
            lines_for(&f, "thread-outside-exec").is_empty(),
            "{rel} is the execution layer: {f:?}"
        );
    }
}

#[test]
fn r10_network_fixture() {
    let src = include_str!("fixtures/r10_network.rs");
    let f = scan_source("crates/netsim/src/fixture.rs", src);
    // `use std::net::TcpListener` (net + TcpListener, 3), the grouped
    // import (net + TcpStream + UdpSocket, 4), `std::net::TcpListener::
    // bind` (net + TcpListener, 14). The suppressed `net` (7), the
    // `net` parameter (9), the `net` field (18) and the string literal
    // (21) are silent.
    assert_eq!(
        lines_for(&f, "network-outside-serve"),
        vec![3, 3, 4, 4, 4, 14, 14]
    );
}

#[test]
fn r10_exempt_in_serving_and_execution_layer() {
    let src = include_str!("fixtures/r10_network.rs");
    for rel in [
        "crates/steelserve/src/fixture.rs",
        "crates/steelpar/src/fixture.rs",
        "crates/bench/src/fixture.rs",
    ] {
        let f = scan_source(rel, src);
        assert!(
            lines_for(&f, "network-outside-serve").is_empty(),
            "{rel} is the serving/execution layer: {f:?}"
        );
    }
}

#[test]
fn r4_cargo_toml_fixture() {
    let mut f = Vec::new();
    manifest::scan_cargo_toml(
        "Cargo.toml",
        include_str!("fixtures/r4_bad_cargo.toml"),
        &mut f,
    );
    let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
    // serde (6), leftpad (7), [dependencies.tokio] table without path
    // (11), quickcheck (15). `good` and `alias.workspace` pass.
    assert_eq!(lines, vec![6, 7, 11, 15], "{f:?}");
}

#[test]
fn r4_cargo_lock_fixture() {
    let mut f = Vec::new();
    manifest::scan_cargo_lock(
        "Cargo.lock",
        include_str!("fixtures/r4_bad_cargo.lock"),
        &mut f,
    );
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 11);
    assert_eq!(f[0].rule, "manifest-hygiene");
}

#[test]
fn typo_suppression_is_reported_and_unsuppressable() {
    let src = "// steelcheck: allow(wallclock)\nlet t = Instant::now();\n";
    let f = scan_source("crates/core/src/fixture.rs", src);
    assert!(
        f.iter().any(|x| x.rule == "bad-directive"),
        "typo'd rule name must be reported: {f:?}"
    );
    assert!(
        f.iter().any(|x| x.rule == "wall-clock"),
        "the misspelled directive must not suppress anything: {f:?}"
    );
}

#[test]
fn every_allowlist_entry_names_a_known_rule_and_real_file() {
    let root = steelcheck::walk::find_workspace_root(std::path::Path::new(env!(
        "CARGO_MANIFEST_DIR"
    )))
    .expect("workspace root");
    for e in ALLOWLIST {
        assert!(
            ALL_RULES.contains(&e.rule),
            "allowlist entry {} names unknown rule {}",
            e.path,
            e.rule
        );
        assert!(
            root.join(e.path).is_file(),
            "allowlist entry {} names a file that no longer exists; delete the entry",
            e.path
        );
        assert!(!e.why.is_empty());
    }
}
