//! Integration tests for the interprocedural layer (rules 7–9) and the
//! unused-suppression audit, run over fixture mini-workspaces in
//! `tests/fixtures/ws_*`. The real walker never descends into a
//! `fixtures/` directory, so these deliberately-violating workspaces
//! cannot fail the repo gate; the tests point [`steelcheck::run`] at a
//! fixture root directly.

use std::path::{Path, PathBuf};
use steelcheck::report::{Finding, Report};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> Report {
    steelcheck::run(&fixture_root(name)).expect("fixture scan")
}

fn by_rule<'a>(r: &'a Report, rule: &str) -> Vec<&'a Finding> {
    r.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn r7_flags_wallclock_two_calls_below_sim_entry_with_path() {
    let r = run_fixture("ws_reach");
    let f = by_rule(&r, "wallclock-reachable");
    assert_eq!(f.len(), 1, "{:?}", r.findings);
    assert_eq!(f[0].file, "crates/netsim/src/lib.rs");
    assert_eq!(f[0].line, 22);
    assert_eq!(
        f[0].flow_text(),
        "netsim::Sim::run -> netsim::step_world -> netsim::poll_host_clock",
        "finding must carry the full call path as a structured flow"
    );
    // The rendered diagnostic keeps the path visible.
    assert!(
        format!("{}", f[0]).contains("(via netsim::Sim::run -> netsim::step_world"),
        "{}",
        f[0]
    );
}

#[test]
fn r8_flags_panic_two_calls_below_figure_main_with_path() {
    let r = run_fixture("ws_reach");
    let f = by_rule(&r, "panic-reachable");
    assert_eq!(f.len(), 3, "{:?}", r.findings);
    assert_eq!(f[0].file, "crates/bench/src/bin/figx.rs");
    assert_eq!(f[0].line, 20);
    assert_eq!(
        f[0].flow_text(),
        "bench/figx::main -> bench/figx::load_stage -> bench/figx::parse_stage",
        "finding must carry the full call path as a structured flow"
    );
}

#[test]
fn r8_r9_trace_through_labeled_loops_and_worklists() {
    // `walk_stage` is a labeled while-let worklist loop (the shape of
    // the xdpsim verifier's fixpoint): the per-trip ambient seed and
    // the unwrap one call below the loop body must both be attributed
    // and flagged.
    let r = run_fixture("ws_reach");
    let seed = by_rule(&r, "rng-entropy");
    assert!(
        seed.iter().any(|f| f.line == 36
            && f.file == "crates/bench/src/bin/figx.rs"
            && f.message.contains("flows from `bench::ambient_seed`")),
        "{:?}",
        r.findings
    );
    let panic = by_rule(&r, "panic-reachable");
    let in_loop = panic
        .iter()
        .find(|f| f.line == 46 && f.file == "crates/bench/src/bin/figx.rs")
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    assert_eq!(
        in_loop.flow_text(),
        "bench/figx::main -> bench/figx::walk_stage -> bench/figx::step_stage",
        "path must run through the loop body"
    );
}

#[test]
fn r8_r9_trace_lowered_execution_dispatch() {
    // `lowered_stage` mirrors the xdpsim compiled engine: an `Option`
    // engine matched once, then a per-block executor loop. Both rules
    // must carry reachability through the match arm and the loop.
    let r = run_fixture("ws_reach");
    let seed = by_rule(&r, "rng-entropy");
    let block_seed = seed
        .iter()
        .find(|f| f.line == 68 && f.file == "crates/bench/src/bin/figx.rs")
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    assert_eq!(
        block_seed.flow_text(),
        "bench/figx::main -> bench/figx::lowered_stage -> bench/figx::exec_lowered",
        "seed path must run through the engine dispatch"
    );
    let panic = by_rule(&r, "panic-reachable");
    let in_block = panic
        .iter()
        .find(|f| f.line == 75 && f.file == "crates/bench/src/bin/figx.rs")
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    assert_eq!(
        in_block.flow_text(),
        "bench/figx::main -> bench/figx::lowered_stage -> bench/figx::exec_lowered \
         -> bench/figx::exec_block",
        "panic path must reach the block executor"
    );
}

#[test]
fn r9_flags_ambient_seeds_direct_and_through_taint() {
    let r = run_fixture("ws_reach");
    let f = by_rule(&r, "rng-entropy");
    assert_eq!(f.len(), 4, "{:?}", r.findings);
    // Line 8: the seed flows through bench::ambient_seed, which reads
    // the clock; line 9 reads SystemTime inside the seed expression.
    assert_eq!((f[0].file.as_str(), f[0].line), ("crates/bench/src/bin/figx.rs", 8));
    assert!(
        f[0].message.contains("flows from `bench::ambient_seed`"),
        "{}",
        f[0].message
    );
    assert_eq!((f[1].file.as_str(), f[1].line), ("crates/bench/src/bin/figx.rs", 9));
    assert!(
        f[1].message.contains("reads `SystemTime`"),
        "{}",
        f[1].message
    );
    // The literal seed on line 7 is clean.
    assert!(f.iter().all(|x| x.line != 7));
}

#[test]
fn suppressed_reachability_sites_are_silent_and_count_as_used() {
    let r = run_fixture("ws_reach");
    // netsim::sample_epoch (allow wallclock-reachable), figx line 11
    // (allow rng-entropy), and figx::checked_stage (allow
    // panic-reachable) are all excused…
    assert!(
        r.findings
            .iter()
            .all(|f| !(f.file.ends_with("netsim/src/lib.rs") && f.line == 28)),
        "{:?}",
        r.findings
    );
    assert!(r.findings.iter().all(|f| f.line != 11 && f.line != 25));
    // …and because the interprocedural layer marked them used, the
    // audit has nothing to say.
    assert!(by_rule(&r, "unused-suppression").is_empty(), "{:?}", r.findings);
    // The fixture's full finding set, exactly.
    let got: Vec<(String, u32, String)> = r
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("crates/bench/src/bin/figx.rs".into(), 8, "rng-entropy".into()),
            ("crates/bench/src/bin/figx.rs".into(), 9, "rng-entropy".into()),
            ("crates/bench/src/bin/figx.rs".into(), 20, "panic-reachable".into()),
            ("crates/bench/src/bin/figx.rs".into(), 36, "rng-entropy".into()),
            ("crates/bench/src/bin/figx.rs".into(), 46, "panic-reachable".into()),
            ("crates/bench/src/bin/figx.rs".into(), 68, "rng-entropy".into()),
            ("crates/bench/src/bin/figx.rs".into(), 75, "panic-reachable".into()),
            ("crates/netsim/src/lib.rs".into(), 22, "wallclock-reachable".into()),
        ]
    );
}

#[test]
fn stale_suppression_is_flagged() {
    let r = run_fixture("ws_unused");
    let got: Vec<(String, u32, String)> = r
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone()))
        .collect();
    assert_eq!(
        got,
        vec![("crates/app/src/lib.rs".into(), 4, "unused-suppression".into())]
    );
    assert!(r.findings[0].message.contains("allow(wall-clock)"));
}

#[test]
fn json_and_sarif_are_byte_deterministic() {
    let a = run_fixture("ws_reach");
    let b = run_fixture("ws_reach");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_sarif(), b.to_sarif());
}

#[test]
fn sarif_matches_golden_file() {
    let got = run_fixture("ws_reach").to_sarif();
    let golden_path = fixture_root("ws_reach.sarif.golden");
    let want = std::fs::read_to_string(&golden_path).expect("golden file");
    assert_eq!(
        got, want,
        "SARIF output drifted from {}; if the change is intentional, \
         regenerate the golden with `steelcheck --root <fixture> --format sarif`",
        golden_path.display()
    );
}
