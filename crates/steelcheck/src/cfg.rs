//! Per-function control-flow graphs over the token stream (layer 4).
//!
//! [`build`] turns one [`FnItem`]'s body span into basic blocks over
//! branches (`if`/`else if`/`else`, `match`), loops (`loop`/`while`/
//! `for`, with back edges and `break`/`continue` edges), and early
//! returns, attributing statement-level events — call sites,
//! lock-guard acquisitions and releases, float compound-accumulations
//! — to the block that executes them. The dataflow framework in
//! [`crate::flow`] runs fixpoints over this graph; the layer-4 rules
//! in [`crate::flowrules`] interpret the events.
//!
//! Deliberate over-approximations (same philosophy as the parser: a
//! spurious path costs at worst one justified suppression, a missing
//! path is a hole in the contract):
//!
//! - Closure bodies are inlined into the enclosing function's blocks,
//!   as if executed exactly once at the definition site.
//! - Labeled `break`/`continue` target the innermost loop.
//! - Expression-form match arms (`pat => expr,`) are scanned linearly;
//!   control flow nested inside them does not fork blocks.
//! - The `?` operator's early-return edge is ignored — it only *ends*
//!   paths early, so ignoring it adds paths but never hides one.
//!
//! Lock-guard modeling (rule R11's ground truth):
//!
//! - An acquisition is a zero-argument `.lock()`/`.read()`/`.write()`
//!   method call (the zero-argument filter is what distinguishes these
//!   from `io::Read`/`io::Write`, whose methods take a buffer), or a
//!   call to a free helper named `lock(&x)` (the workspace's
//!   poison-riding idiom). The lock's identity is the last field
//!   segment of the receiver or argument path (`shared.queue` →
//!   `queue`).
//! - A guard bound by `let` releases at the end of its scope, or
//!   earlier at an explicit `drop(guard)`.
//! - An unbound guard (`*lock(&x) = v;`) releases at the end of its
//!   statement — except `if let`/`while let`/`match` scrutinees, which
//!   Rust keeps alive through the *whole* construct (else branches
//!   included), and plain `if`/`while`/`for` condition temporaries,
//!   which drop before the body runs.
//! - A `.lock()` on a bare function parameter is skipped: generic
//!   helpers taking `&Mutex<T>` would otherwise unify every caller's
//!   lock into one identity. The acquisition is attributed to the
//!   `lock(&x)` call sites instead.

use crate::lexer::{Lexed, TokKind, Token};
use crate::parse::FnItem;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that acquire a guard when called with zero arguments.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One basic block: straight-line events plus sorted successor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Successor block ids, sorted and deduplicated.
    pub succs: Vec<usize>,
    /// Events in execution order.
    pub events: Vec<Event>,
    /// Number of enclosing loops (0 = straight-line code).
    pub loop_depth: u32,
}

/// A statement-level event attributed to a block, in execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A call site; indexes the owning [`FnItem::calls`].
    Call {
        /// Index into the owning item's `calls` vector.
        call_idx: usize,
    },
    /// A lock acquisition; indexes [`Cfg::locks`].
    Acquire {
        /// Index into [`Cfg::locks`].
        site: usize,
    },
    /// The matching release (scope end, `drop(guard)`, or statement end).
    Release {
        /// Index into [`Cfg::locks`].
        site: usize,
    },
    /// A float compound accumulation (`lhs += ..` / `lhs *= ..`).
    FloatAccum {
        /// 1-based line of the operator.
        line: u32,
        /// Dotted lhs path (`self.ns`), index expressions elided.
        lhs: String,
    },
}

/// One lock-acquisition site discovered in the body.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Lock identity: last field segment of the receiver/argument path.
    pub lock: String,
    /// 1-based line of the acquiring call.
    pub line: u32,
}

/// The control-flow graph of one function body.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks; ids index this vector.
    pub blocks: Vec<Block>,
    /// Entry block id.
    pub entry: usize,
    /// Exit block id (every `return` and the final fallthrough edge here).
    pub exit: usize,
    /// Lock-acquisition sites referenced by `Acquire`/`Release` events.
    pub locks: Vec<LockSite>,
}

/// Collect the file-level float-evidence ident set: names declared or
/// assigned with `f64`/`f32` types or float literals (`ns: f64`,
/// `let acc = 0.0`). Used to classify `a += b` when neither side is a
/// literal at the accumulation site.
pub fn float_names(lexed: &Lexed) -> BTreeSet<String> {
    let toks = &lexed.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if let Some(next) = toks.get(i + 1) {
            if next.is_punct(":")
                && toks
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"))
            {
                names.insert(toks[i].text.clone());
            }
            if next.is_punct("=") && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Float) {
                names.insert(toks[i].text.clone());
            }
        }
    }
    names
}

/// Build the CFG for one function item.
pub fn build(lexed: &Lexed, item: &FnItem, float_names: &BTreeSet<String>) -> Cfg {
    let toks = &lexed.tokens;
    let (lo, hi) = item.body;
    if lo >= hi || hi > toks.len() || !toks[lo].is_punct("{") {
        // Degenerate span (EOF-closed body): one empty block.
        let block = Block::default();
        return Cfg {
            blocks: vec![block.clone(), block],
            entry: 0,
            exit: 1,
            locks: Vec::new(),
        };
    }
    let locks = LockScan::new(toks, item).run();
    let mut call_at = BTreeMap::new();
    for (ci, call) in item.calls.iter().enumerate() {
        call_at.insert(call.name_idx, ci);
    }
    let mut b = Builder {
        toks,
        blocks: vec![Block::default(), Block::default()],
        loops: Vec::new(),
        exit: 1,
        acquire_at: locks.acquire_at,
        release_at: locks.release_at,
        construct_rel: locks.construct_releases,
        call_at,
        float_names,
        body: (lo, hi),
    };
    let last = b.walk_braced(lo, hi - 1, 0);
    b.edge(last, 1);
    // Construct releases the walker never drained (constructs nested in
    // linearly-scanned expression arms): release at fn exit so the lock
    // is at worst over-held to the end of this function, never leaked
    // into callers.
    let leftovers: Vec<usize> = b.construct_rel.values().flatten().copied().collect();
    for site in leftovers {
        b.blocks[1].events.push(Event::Release { site });
    }
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
        locks: locks.sites,
    }
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            depth += 1;
        } else if toks[j].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Pass 1 output: acquisition sites plus the token indices where each
/// acquires and releases.
struct LockScanOut {
    sites: Vec<LockSite>,
    acquire_at: BTreeMap<usize, Vec<usize>>,
    release_at: BTreeMap<usize, Vec<usize>>,
    /// Scrutinee-temporary releases, keyed by the `if`/`while`/`match`/
    /// `for` keyword token of the construct that owns the temporary.
    /// The walker drains these into the construct's join (or loop
    /// exit) block, so the release is seen on *every* branch — a
    /// token-keyed release would land in whichever branch happens to
    /// contain that token.
    construct_releases: BTreeMap<usize, Vec<usize>>,
}

/// Pass 1: a linear scan over the body resolving every guard's
/// acquisition token and release token from Rust's scoping rules.
struct LockScan<'a> {
    toks: &'a [Token],
    body: (usize, usize),
    params: BTreeSet<String>,
    out: LockScanOut,
}

impl<'a> LockScan<'a> {
    fn new(toks: &'a [Token], item: &FnItem) -> Self {
        LockScan {
            toks,
            body: item.body,
            params: param_names(toks, item.body.0),
            out: LockScanOut {
                sites: Vec::new(),
                acquire_at: BTreeMap::new(),
                release_at: BTreeMap::new(),
                construct_releases: BTreeMap::new(),
            },
        }
    }

    fn run(mut self) -> LockScanOut {
        let (lo, hi) = self.body;
        // Scope stack of `{` indices; guards bound in a scope release at
        // its `}`.
        let mut scopes: Vec<usize> = Vec::new();
        // Active named guards: (name, scope-open index, site id).
        let mut guards: Vec<(String, usize, usize)> = Vec::new();
        let mut stmt_start = lo;
        let mut i = lo;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct("{") {
                scopes.push(i);
                stmt_start = i + 1;
            } else if t.is_punct("}") {
                if let Some(open) = scopes.pop() {
                    // Release every guard bound in the closing scope, in
                    // acquisition order.
                    let mut k = 0;
                    while k < guards.len() {
                        if guards[k].1 == open {
                            let (_, _, site) = guards.remove(k);
                            self.release(i, site);
                        } else {
                            k += 1;
                        }
                    }
                }
                stmt_start = i + 1;
            } else if t.is_punct(";") || t.is_punct("=>") {
                stmt_start = i + 1;
            } else if t.kind == TokKind::Ident {
                if t.text == "drop"
                    && self.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                    && self.toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
                {
                    let arg = &self.toks[i + 2];
                    if let Some(k) = guards.iter().position(|(n, _, _)| arg.is_ident(n)) {
                        let (_, _, site) = guards.remove(k);
                        self.release(i + 3, site);
                    }
                } else if let Some(lock) = self.acquire_name(i) {
                    let site = self.out.sites.len();
                    self.out.sites.push(LockSite {
                        lock,
                        line: t.line,
                    });
                    self.out.acquire_at.entry(i).or_default().push(site);
                    match self.binding(stmt_start) {
                        Binding::Named(name) => {
                            guards.push((name, scopes.last().copied().unwrap_or(lo), site));
                        }
                        Binding::Construct => {
                            self.out
                                .construct_releases
                                .entry(stmt_start)
                                .or_default()
                                .push(site);
                        }
                        Binding::Condition => {
                            // Condition temporaries drop before the body
                            // runs: release at the last condition token,
                            // which the walker attributes to the head.
                            let open = self.next_block_open(stmt_start);
                            self.release(open.saturating_sub(1).max(i), site);
                        }
                        Binding::Temp => {
                            let end = self.stmt_end(i);
                            self.release(end, site);
                        }
                    }
                }
            }
            i += 1;
        }
        // Anything still held (EOF-closed body): release at the last token.
        for (_, _, site) in guards {
            self.release(hi - 1, site);
        }
        self.out
    }

    fn release(&mut self, at: usize, site: usize) {
        self.out.release_at.entry(at).or_default().push(site);
    }

    /// Is the ident at `i` an acquisition? Returns the lock identity.
    fn acquire_name(&self, i: usize) -> Option<String> {
        let t = &self.toks[i];
        let zero_arg_call = self.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && self.toks.get(i + 2).is_some_and(|t| t.is_punct(")"));
        if ACQUIRE_METHODS.contains(&t.text.as_str())
            && zero_arg_call
            && i >= 2
            && self.toks[i - 1].is_punct(".")
        {
            // `.lock()` / `.read()` / `.write()`: walk the receiver chain
            // back to its root.
            if self.toks[i - 2].kind != TokKind::Ident {
                return None; // receiver is a call result or index — unnameable
            }
            let mut r = i - 2;
            while r >= 2 && self.toks[r - 1].is_punct(".") && self.toks[r - 2].kind == TokKind::Ident
            {
                r -= 2;
            }
            let root = &self.toks[r].text;
            if r == i - 2 && self.params.contains(root) {
                return None; // generic helper: attribute to its callers
            }
            return Some(self.toks[i - 2].text.clone());
        }
        if t.text == "lock"
            && self.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && !(i > 0 && (self.toks[i - 1].is_punct(".") || self.toks[i - 1].is_punct("::")))
            && !(i > 0 && self.toks[i - 1].is_ident("fn"))
        {
            // Free `lock(&path.to.lock)` helper call: identity is the last
            // ident in the argument list.
            let close = self.match_paren(i + 1);
            let mut last = None;
            for j in i + 2..close {
                if self.toks[j].kind == TokKind::Ident {
                    last = Some(self.toks[j].text.clone());
                }
            }
            return last;
        }
        None
    }

    /// Classify how the guard acquired in the statement starting at `s`
    /// is bound.
    fn binding(&self, s: usize) -> Binding {
        let t = |k: usize| self.toks.get(k);
        if t(s).is_some_and(|t| t.is_ident("let")) {
            let mut j = s + 1;
            if t(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = t(j).filter(|t| t.kind == TokKind::Ident) {
                // `let g = ..` or `let g: Ty = ..`.
                if t(j + 1).is_some_and(|t| t.is_punct("=") || t.is_punct(":")) {
                    if name.text == "_" {
                        return Binding::Temp;
                    }
                    // `let v = *lock(&m);` copies the value out; the
                    // guard is a statement temporary, not `v`. (But
                    // `let g = &mut *lock(&m)` extends the temporary's
                    // lifetime to the binding — the leading `&` keeps
                    // it Named.)
                    let mut eq = j + 1;
                    while t(eq).is_some_and(|t| !t.is_punct("=")) {
                        eq += 1;
                    }
                    if t(eq + 1).is_some_and(|t| t.is_punct("*")) {
                        return Binding::Temp;
                    }
                    return Binding::Named(name.text.clone());
                }
            }
            return Binding::Temp; // destructuring let: guard is a temporary
        }
        let head_if_while = t(s).is_some_and(|t| t.is_ident("if") || t.is_ident("while"));
        if head_if_while && t(s + 1).is_some_and(|t| t.is_ident("let")) {
            return Binding::Construct;
        }
        if t(s).is_some_and(|t| t.is_ident("match") || t.is_ident("for")) {
            // `for`: the iterable's temporaries live through the loop.
            return Binding::Construct;
        }
        if head_if_while {
            return Binding::Condition;
        }
        Binding::Temp
    }

    /// First `{` at zero paren/bracket depth at or after `s`.
    fn next_block_open(&self, s: usize) -> usize {
        let mut pd = 0i64;
        let mut bd = 0i64;
        let mut j = s;
        while j < self.body.1 {
            let t = &self.toks[j];
            if t.is_punct("(") {
                pd += 1;
            } else if t.is_punct(")") {
                pd -= 1;
            } else if t.is_punct("[") {
                bd += 1;
            } else if t.is_punct("]") {
                bd -= 1;
            } else if t.is_punct("{") && pd == 0 && bd == 0 {
                return j;
            }
            j += 1;
        }
        self.body.1 - 1
    }

    /// End of the statement containing the acquire at `i`: the next `;`
    /// (or match-arm `,`) at balanced depth, or the `}` that closes the
    /// enclosing scope (tail expression).
    fn stmt_end(&self, i: usize) -> usize {
        let mut pd = 0i64;
        let mut bd = 0i64;
        let mut brd = 0i64;
        let mut j = i;
        while j < self.body.1 {
            let t = &self.toks[j];
            if t.is_punct("(") {
                pd += 1;
            } else if t.is_punct(")") {
                pd -= 1;
            } else if t.is_punct("[") {
                bd += 1;
            } else if t.is_punct("]") {
                bd -= 1;
            } else if t.is_punct("{") {
                brd += 1;
            } else if t.is_punct("}") {
                brd -= 1;
                if brd < 0 {
                    return j; // tail expression: temp dies at scope end
                }
            } else if (t.is_punct(";") || t.is_punct(",")) && pd == 0 && bd == 0 && brd == 0 {
                return j;
            }
            j += 1;
        }
        self.body.1 - 1
    }

    /// Index of the `)` matching the `(` at `open`.
    fn match_paren(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut j = open;
        while j < self.toks.len() {
            if self.toks[j].is_punct("(") {
                depth += 1;
            } else if self.toks[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.toks.len().saturating_sub(1)
    }
}

/// How a guard value is bound at its statement.
enum Binding {
    /// `let g = ..` — releases at scope end or `drop(g)`.
    Named(String),
    /// `if let`/`while let`/`match` scrutinee — releases at construct end.
    Construct,
    /// Plain `if`/`while`/`for` condition — releases at the body `{`.
    Condition,
    /// Statement temporary — releases at the statement's `;`.
    Temp,
}

/// The parameter-name set of the fn whose body opens at `body_open`.
fn param_names(toks: &[Token], body_open: usize) -> BTreeSet<String> {
    // Walk back to the `fn` keyword (the header cannot contain one),
    // then forward into the parameter parens.
    let mut f = body_open;
    while f > 0 && !toks[f].is_ident("fn") {
        f -= 1;
    }
    let mut names = BTreeSet::new();
    let mut j = f;
    while j < body_open && !toks[j].is_punct("(") {
        j += 1;
    }
    let mut depth = 0i64;
    while j < body_open {
        let t = &toks[j];
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
        {
            names.insert(t.text.clone());
        }
        j += 1;
    }
    names
}

/// Pass 2: recursive-descent CFG construction.
struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    /// Innermost-last stack of (head, exit) block ids.
    loops: Vec<(usize, usize)>,
    exit: usize,
    acquire_at: BTreeMap<usize, Vec<usize>>,
    release_at: BTreeMap<usize, Vec<usize>>,
    construct_rel: BTreeMap<usize, Vec<usize>>,
    call_at: BTreeMap<usize, usize>,
    float_names: &'a BTreeSet<String>,
    body: (usize, usize),
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        let id = self.blocks.len();
        self.blocks.push(Block {
            succs: Vec::new(),
            events: Vec::new(),
            loop_depth: self.loops.len() as u32,
        });
        id
    }

    fn edge(&mut self, from: usize, to: usize) {
        let succs = &mut self.blocks[from].succs;
        if let Err(pos) = succs.binary_search(&to) {
            succs.insert(pos, to);
        }
    }

    /// Attribute the events of the token at `i` to block `cur`.
    /// Order matters at an acquiring call token: the call happens
    /// first (the callee runs before the guard exists), then the
    /// acquisition; releases at `;`/`}` tokens never coincide with
    /// either.
    fn visit(&mut self, cur: usize, i: usize) {
        if let Some(&ci) = self.call_at.get(&i) {
            self.blocks[cur].events.push(Event::Call { call_idx: ci });
        }
        if let Some(sites) = self.acquire_at.get(&i).cloned() {
            for site in sites {
                self.blocks[cur].events.push(Event::Acquire { site });
            }
        }
        if let Some(sites) = self.release_at.get(&i).cloned() {
            for site in sites {
                self.blocks[cur].events.push(Event::Release { site });
            }
        }
        let t = &self.toks[i];
        if t.is_punct("+=") || t.is_punct("*=") {
            if let Some((line, lhs)) = self.float_accum(i) {
                self.blocks[cur].events.push(Event::FloatAccum { line, lhs });
            }
        }
    }

    /// Classify the compound assignment at `i`: float-typed evidence in
    /// the statement (a float literal, an `f64`/`f32` ident, or a name
    /// from the file's float-ident set) makes it a `FloatAccum`.
    fn float_accum(&self, i: usize) -> Option<(u32, String)> {
        // Walk the lhs chain back over `a.b.c` (and `a[k]` index groups).
        let mut segs: Vec<String> = Vec::new();
        let mut j = i;
        loop {
            let mut k = j - 1;
            if self.toks[k].is_punct("]") {
                let mut depth = 0i64;
                while k > 0 {
                    if self.toks[k].is_punct("]") {
                        depth += 1;
                    } else if self.toks[k].is_punct("[") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k -= 1;
                }
                k = k.checked_sub(1)?;
            }
            if self.toks[k].kind != TokKind::Ident {
                break;
            }
            segs.push(self.toks[k].text.clone());
            if k >= 2 && self.toks[k - 1].is_punct(".") {
                j = k - 1;
            } else {
                break;
            }
        }
        if segs.is_empty() {
            return None;
        }
        segs.reverse();
        // Statement bounds: back to the previous `;`/`{`/`}`, forward to
        // the next `;` (or scope close) at balanced depth.
        let mut s = i;
        while s > self.body.0 {
            let t = &self.toks[s - 1];
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                break;
            }
            s -= 1;
        }
        let mut e = i + 1;
        let mut depth = 0i64;
        while e < self.body.1 {
            let t = &self.toks[e];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if t.is_punct(";") && depth == 0 {
                break;
            }
            e += 1;
        }
        let floaty = self.toks[s..e].iter().any(|t| {
            t.kind == TokKind::Float
                || t.is_ident("f64")
                || t.is_ident("f32")
                || (t.kind == TokKind::Ident && self.float_names.contains(&t.text))
        });
        if floaty {
            Some((self.toks[i].line, segs.join(".")))
        } else {
            None
        }
    }

    /// Walk the brace-delimited region `[open, close]`, visiting both
    /// braces (release events live on `}` tokens); returns the block
    /// control ends in.
    fn walk_braced(&mut self, open: usize, close: usize, cur: usize) -> usize {
        self.visit(cur, open);
        let last = self.walk_block(open + 1, close, cur);
        self.visit(last, close.min(self.toks.len() - 1));
        last
    }

    /// Walk statements in `[lo, hi)`; returns the block control ends in.
    fn walk_block(&mut self, lo: usize, hi: usize, mut cur: usize) -> usize {
        let mut i = lo;
        while i < hi {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (join, next) = self.walk_if(i, cur);
                        cur = join;
                        i = next;
                        continue;
                    }
                    "match" => {
                        let (join, next) = self.walk_match(i, cur);
                        cur = join;
                        i = next;
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        let (exit, next) = self.walk_loop(i, cur);
                        cur = exit;
                        i = next;
                        continue;
                    }
                    "break" | "continue" | "return" => {
                        let (dead, next) = self.walk_jump(i, cur);
                        cur = dead;
                        i = next;
                        continue;
                    }
                    _ => {}
                }
            }
            if t.is_punct("{") {
                let close = match_brace(self.toks, i);
                cur = self.walk_braced(i, close, cur);
                i = close + 1;
                continue;
            }
            self.visit(cur, i);
            i += 1;
        }
        cur
    }

    /// Drain pass-1 construct releases keyed at keyword token `kw`
    /// into block `blk` (the construct's join / loop exit).
    fn drain_construct(&mut self, kw: usize, blk: usize) {
        if let Some(sites) = self.construct_rel.remove(&kw) {
            for site in sites {
                self.blocks[blk].events.push(Event::Release { site });
            }
        }
    }

    /// `if cond { .. } [else if .. { .. }]* [else { .. }]` starting at
    /// the `if` token; returns (join block, resume index).
    fn walk_if(&mut self, i: usize, cur: usize) -> (usize, usize) {
        // Condition tokens (incl. `let pat =` for if-let) evaluate in `cur`.
        let open = self.scan_head(i + 1, cur);
        let close = match_brace(self.toks, open);
        let then_entry = self.new_block();
        self.edge(cur, then_entry);
        let then_exit = self.walk_braced(open, close, then_entry);
        let mut next = close + 1;
        let join = self.new_block();
        self.edge(then_exit, join);
        if self.toks.get(next).is_some_and(|t| t.is_ident("else")) {
            if self.toks.get(next + 1).is_some_and(|t| t.is_ident("if")) {
                let (else_join, after) = self.walk_if(next + 1, cur);
                self.edge(else_join, join);
                next = after;
            } else if self.toks.get(next + 1).is_some_and(|t| t.is_punct("{")) {
                let else_close = match_brace(self.toks, next + 1);
                let else_entry = self.new_block();
                self.edge(cur, else_entry);
                let else_exit = self.walk_braced(next + 1, else_close, else_entry);
                self.edge(else_exit, join);
                next = else_close + 1;
            } else {
                self.edge(cur, join); // malformed else: degrade to fallthrough
            }
        } else {
            self.edge(cur, join); // no else: condition-false falls through
        }
        // An if-let scrutinee temporary drops after the whole construct,
        // on every branch: release in the join.
        self.drain_construct(i, join);
        (join, next)
    }

    /// `match scrutinee { arms }`; returns (join block, resume index).
    /// Brace-bodied arms recurse; expression arms are scanned linearly.
    fn walk_match(&mut self, i: usize, cur: usize) -> (usize, usize) {
        let open = self.scan_head(i + 1, cur);
        let close = match_brace(self.toks, open);
        self.visit(cur, open);
        let join = self.new_block();
        let mut j = open + 1;
        while j < close {
            // Pattern (and optional guard) tokens evaluate in the head.
            let mut depth = 0i64;
            while j < close {
                let t = &self.toks[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct("=>") && depth == 0 {
                    break;
                }
                self.visit(cur, j);
                j += 1;
            }
            if j >= close {
                break;
            }
            j += 1; // past `=>`
            let arm = self.new_block();
            self.edge(cur, arm);
            if self.toks.get(j).is_some_and(|t| t.is_punct("{")) {
                let arm_close = match_brace(self.toks, j);
                let arm_exit = self.walk_braced(j, arm_close, arm);
                self.edge(arm_exit, join);
                j = arm_close + 1;
                if self.toks.get(j).is_some_and(|t| t.is_punct(",")) {
                    j += 1;
                }
            } else {
                // Expression arm: linear scan to the `,` at zero depth.
                let mut depth = 0i64;
                while j < close {
                    let t = &self.toks[j];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                    } else if t.is_punct(",") && depth == 0 {
                        break;
                    }
                    self.visit(arm, j);
                    j += 1;
                }
                self.edge(arm, join);
                if j < close {
                    j += 1; // past `,`
                }
            }
        }
        // Scrutinee temporaries release after the whole match; attribute
        // that to the join every arm reaches.
        self.drain_construct(i, join);
        self.visit(join, close.min(self.toks.len() - 1));
        (join, close + 1)
    }

    /// `loop`/`while`/`for` starting at `i`; returns (exit block,
    /// resume index).
    fn walk_loop(&mut self, i: usize, cur: usize) -> (usize, usize) {
        let kw = self.toks[i].text.clone();
        let head = self.new_block();
        let exit = self.new_block();
        // The head re-evaluates per iteration: it is *inside* the loop.
        self.blocks[head].loop_depth += 1;
        self.edge(cur, head);
        self.loops.push((head, exit));
        let open = if kw == "loop" {
            let mut j = i + 1;
            while j < self.body.1 && !self.toks[j].is_punct("{") {
                self.visit(head, j); // labels etc.
                j += 1;
            }
            j
        } else {
            // while/for: condition (or pattern-in-iterable) tokens run in
            // the head each iteration.
            self.scan_head(i + 1, head)
        };
        let close = match_brace(self.toks, open);
        let body_entry = self.new_block();
        self.edge(head, body_entry);
        let body_exit = self.walk_braced(open, close, body_entry);
        self.edge(body_exit, head);
        self.loops.pop();
        if kw != "loop" {
            self.edge(head, exit); // condition-false exit
        }
        // A while-let scrutinee temporary is dropped before the next
        // condition evaluation and on loop exit: releasing at the head's
        // *start* (before this iteration's acquire) plus the exit models
        // both. A `for` iterable's temporaries live through the whole
        // loop: release only at the exit.
        if let Some(sites) = self.construct_rel.remove(&i) {
            for &site in &sites {
                if kw == "while" {
                    self.blocks[head].events.insert(0, Event::Release { site });
                }
                self.blocks[exit].events.push(Event::Release { site });
            }
        }
        (exit, close + 1)
    }

    /// `break`/`continue`/`return` plus its value expression; returns
    /// (dead continuation block, resume index).
    fn walk_jump(&mut self, i: usize, cur: usize) -> (usize, usize) {
        let kw = self.toks[i].text.clone();
        // Value tokens (e.g. `break take(&mut q)`) evaluate before the jump.
        let mut j = i + 1;
        if kw != "continue" {
            let mut depth = 0i64;
            while j < self.body.1 {
                let t = &self.toks[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if t.is_punct(";") && depth == 0 {
                    break;
                } else if t.kind == TokKind::Lifetime && depth == 0 {
                    // `break 'label` — skip the label, keep scanning.
                }
                self.visit(cur, j);
                j += 1;
            }
        } else if self.toks.get(j).is_some_and(|t| t.kind == TokKind::Lifetime) {
            j += 1;
        }
        let target = match kw.as_str() {
            "break" => self.loops.last().map(|&(_, exit)| exit),
            "continue" => self.loops.last().map(|&(head, _)| head),
            _ => Some(self.exit),
        };
        if let Some(t) = target {
            self.edge(cur, t);
        }
        (self.new_block(), j)
    }

    /// Scan a construct head (condition / scrutinee / iterable) from `s`
    /// to its body `{` at zero paren/bracket depth, visiting tokens into
    /// `blk`; returns the `{` index.
    fn scan_head(&mut self, s: usize, blk: usize) -> usize {
        let mut pd = 0i64;
        let mut bd = 0i64;
        let mut j = s;
        while j < self.body.1 {
            let t = &self.toks[j];
            if t.is_punct("(") {
                pd += 1;
            } else if t.is_punct(")") {
                pd -= 1;
            } else if t.is_punct("[") {
                bd += 1;
            } else if t.is_punct("]") {
                bd -= 1;
            } else if t.is_punct("{") && pd == 0 && bd == 0 {
                return j;
            }
            self.visit(blk, j);
            j += 1;
        }
        self.body.1 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn cfg_of(src: &str, name: &str) -> (Cfg, crate::parse::FnItem) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let item = parsed
            .fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
            .clone();
        let names = float_names(&lexed);
        (build(&lexed, &item, &names), item)
    }

    /// Flatten (site-lock, kind) pairs in block order for assertions.
    fn lock_events(cfg: &Cfg) -> Vec<(String, &'static str)> {
        let mut out = Vec::new();
        for b in &cfg.blocks {
            for e in &b.events {
                match e {
                    Event::Acquire { site } => out.push((cfg.locks[*site].lock.clone(), "acq")),
                    Event::Release { site } => out.push((cfg.locks[*site].lock.clone(), "rel")),
                    _ => {}
                }
            }
        }
        out
    }

    #[test]
    fn straight_line_guard_releases_at_scope_end() {
        let (cfg, _) = cfg_of(
            "fn f(m: &M) { let g = state.lock(); g.push(1); after(); }",
            "f",
        );
        assert_eq!(
            lock_events(&cfg),
            vec![("state".into(), "acq"), ("state".into(), "rel")]
        );
    }

    #[test]
    fn drop_releases_early() {
        let src = "fn f() { let g = a.lock(); use_it(&g); drop(g); blocking(); }";
        let (cfg, item) = cfg_of(src, "f");
        // The release event must precede the `blocking` call event.
        let events = &cfg.blocks[cfg.entry].events;
        let rel = events
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let blocking = events
            .iter()
            .position(
                |e| matches!(e, Event::Call { call_idx } if item.calls[*call_idx].name() == "blocking"),
            )
            .unwrap();
        assert!(rel < blocking, "drop(g) must release before blocking()");
    }

    #[test]
    fn statement_temp_releases_at_semicolon() {
        let src = "fn f() { *lock(&shared.stopping) = true; after(); }";
        let (cfg, item) = cfg_of(src, "f");
        let events = &cfg.blocks[cfg.entry].events;
        let rel = events
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let after = events
            .iter()
            .position(
                |e| matches!(e, Event::Call { call_idx } if item.calls[*call_idx].name() == "after"),
            )
            .unwrap();
        assert!(rel < after, "statement temp releases before the next call");
        assert_eq!(cfg.locks[0].lock, "stopping");
    }

    #[test]
    fn deref_copy_let_releases_at_statement_end() {
        // `let addr = *lock(&m);` binds the copied value — the guard is
        // a statement temporary, dropped before the next statement.
        let src = "fn f() { let addr = *lock(&shared.addr); connect(addr); }";
        let (cfg, item) = cfg_of(src, "f");
        let events = &cfg.blocks[cfg.entry].events;
        let rel = events
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        let connect = events
            .iter()
            .position(
                |e| matches!(e, Event::Call { call_idx } if item.calls[*call_idx].name() == "connect"),
            )
            .unwrap();
        assert!(rel < connect, "deref-copy guard dies at its `;`");
        // But `&mut *` lifetime extension keeps the guard alive.
        let src = "fn f() { let g = &mut *lock(&shared.q); use_it(g); after(); }";
        let (cfg2, _) = cfg_of(src, "f");
        let evs = &cfg2.blocks[cfg2.entry].events;
        let rel = evs
            .iter()
            .position(|e| matches!(e, Event::Release { .. }))
            .unwrap();
        assert_eq!(rel, evs.len() - 1, "extended guard releases at scope end");
    }

    #[test]
    fn if_let_scrutinee_lives_through_the_whole_construct() {
        let src = r#"
            fn f() {
                if let Some(addr) = *lock(&shared.addr) {
                    connect(addr);
                }
                after();
            }
        "#;
        let (cfg, item) = cfg_of(src, "f");
        // The connect call must see the lock still held: its block's
        // events contain the call, and no Release precedes it anywhere
        // on the path from the acquire.
        let mut acquire_block = None;
        let mut connect_block = None;
        let mut release_block = None;
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for e in &b.events {
                match e {
                    Event::Acquire { .. } => acquire_block = Some(bi),
                    Event::Release { .. } => release_block = Some(bi),
                    Event::Call { call_idx } if item.calls[*call_idx].name() == "connect" => {
                        connect_block = Some(bi)
                    }
                    _ => {}
                }
            }
        }
        let (a, c, r) = (
            acquire_block.unwrap(),
            connect_block.unwrap(),
            release_block.unwrap(),
        );
        assert_ne!(a, c, "connect runs in the then-branch, not the head");
        assert_ne!(c, r, "release happens at the construct join, not in the branch");
    }

    #[test]
    fn plain_if_condition_temp_drops_before_the_body() {
        let src = "fn f() { if *lock(&shared.stopping) { body_call(); } }";
        let (cfg, item) = cfg_of(src, "f");
        // The release is attributed to the head block (at the body `{`),
        // so the body call runs lock-free.
        let head_events = &cfg.blocks[cfg.entry].events;
        assert!(
            head_events
                .iter()
                .any(|e| matches!(e, Event::Release { .. })),
            "condition temp must release in the head: {head_events:?}"
        );
        let body_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.events.iter().any(
                    |e| matches!(e, Event::Call { call_idx } if item.calls[*call_idx].name() == "body_call"),
                )
            })
            .unwrap();
        assert!(!cfg.blocks[body_block]
            .events
            .iter()
            .any(|e| matches!(e, Event::Release { .. })));
    }

    #[test]
    fn param_receiver_lock_is_skipped() {
        let (cfg, _) = cfg_of(
            "fn lock(m: &Mutex<T>) -> MutexGuard<T> { m.lock().unwrap_or_else(|e| e.into_inner()) }",
            "lock",
        );
        assert!(cfg.locks.is_empty(), "generic helper must not self-report");
    }

    #[test]
    fn loops_get_depth_and_back_edges() {
        let src = r#"
            fn f() {
                setup();
                for i in 0..n {
                    inner();
                    while cond() {
                        deepest();
                    }
                }
            }
        "#;
        let (cfg, item) = cfg_of(src, "f");
        let depth_of = |name: &str| {
            cfg.blocks
                .iter()
                .find_map(|b| {
                    b.events.iter().find_map(|e| match e {
                        Event::Call { call_idx } if item.calls[*call_idx].name() == name => {
                            Some(b.loop_depth)
                        }
                        _ => None,
                    })
                })
                .unwrap_or_else(|| panic!("no call {name}"))
        };
        assert_eq!(depth_of("setup"), 0);
        assert_eq!(depth_of("inner"), 1);
        assert_eq!(depth_of("deepest"), 2);
        // Back edge: some block at depth >= 1 points at a lower-id block.
        assert!(cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.loop_depth >= 1 && b.succs.iter().any(|&s| s < i)));
    }

    #[test]
    fn break_targets_loop_exit_and_return_targets_fn_exit() {
        let src = r#"
            fn f() {
                loop {
                    if done() {
                        break;
                    }
                    step();
                }
                if bad() {
                    return;
                }
                tail();
            }
        "#;
        let (cfg, _) = cfg_of(src, "f");
        // Exit block must be reachable from entry.
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
        assert!(seen[cfg.exit], "fn exit unreachable: {:?}", cfg.blocks);
    }

    #[test]
    fn float_accums_are_classified() {
        let src = r#"
            fn f(ns: f64) {
                self.total += ns;
                count += 1;
                scale *= 2.0;
                for x in xs {
                    acc += x as f64;
                }
            }
        "#;
        let (cfg, _) = cfg_of(src, "f");
        let mut accums: Vec<(String, u32)> = Vec::new();
        for b in &cfg.blocks {
            for e in &b.events {
                if let Event::FloatAccum { lhs, .. } = e {
                    accums.push((lhs.clone(), b.loop_depth));
                }
            }
        }
        accums.sort();
        assert_eq!(
            accums,
            vec![
                ("acc".into(), 1),
                ("scale".into(), 0),
                ("self.total".into(), 0),
            ]
        );
    }

    #[test]
    fn match_arms_fork_and_join() {
        let src = r#"
            fn f() {
                match kind() {
                    A => { alpha(); }
                    B => beta(),
                    _ => {}
                }
                after();
            }
        "#;
        let (cfg, item) = cfg_of(src, "f");
        let block_of = |name: &str| {
            cfg.blocks.iter().position(|b| {
                b.events.iter().any(
                    |e| matches!(e, Event::Call { call_idx } if item.calls[*call_idx].name() == name),
                )
            })
        };
        let alpha = block_of("alpha").unwrap();
        let beta = block_of("beta").unwrap();
        let after = block_of("after").unwrap();
        assert_ne!(alpha, beta, "arms get distinct blocks");
        // Both arms flow (transitively) into the block running after().
        for arm in [alpha, beta] {
            let mut seen = vec![false; cfg.blocks.len()];
            let mut stack = vec![arm];
            while let Some(b) = stack.pop() {
                if std::mem::replace(&mut seen[b], true) {
                    continue;
                }
                stack.extend(cfg.blocks[b].succs.iter().copied());
            }
            assert!(seen[after], "arm {arm} must reach the join");
        }
    }
}
