//! CFG/dataflow rules over per-function control flow (rules 11–13).
//!
//! Layer 4 combines the per-function graphs of [`crate::cfg`], the
//! fixpoint framework of [`crate::flow`], and the workspace call graph:
//!
//! - **R11 `lock-discipline`** — a forward held-lock dataflow runs in
//!   every function, held sets propagate along call edges to an
//!   interprocedural fixpoint, and two properties are demanded: the
//!   workspace-wide lock-*order* graph (lock A held while acquiring
//!   lock B ⇒ edge A→B) stays acyclic, and no lock is held across a
//!   blocking call (`JoinHandle::join`, channel `recv`, `accept`,
//!   `TcpStream` I/O). Blocking findings carry the caller chain that
//!   smuggled the lock in.
//! - **R12 `hot-path-alloc`** — allocation-shaped calls (`Vec::new`,
//!   `with_capacity`, `clone`, `collect`, `to_vec`, `format!`, …)
//!   inside loops of functions reachable from the simulator's `run*`
//!   methods, the event/arena/pool internals, or xdpsim's `exec_*`
//!   compiled paths.
//! - **R13 `float-accum-order`** — f64 compound accumulations (and
//!   `.sum::<f64>()`/float `fold`s) in loops reachable from a figure
//!   binary or the cost-accounting layer. The accumulation order is
//!   part of the committed figure bytes, so every site must carry an
//!   inline justification or an entry in the repo-root
//!   `float_accum.allow` inventory — the inventory doubles as the
//!   work-list for re-specifying the cost accumulator (ROADMAP item 2).
//!
//! Everything iterates sorted structures in node-id order, so findings
//! — including rendered lock cycles and caller chains — are
//! byte-deterministic.

use crate::callgraph::CallGraph;
use crate::cfg::{self, Cfg, Event};
use crate::flow;
use crate::parse::CallKind;
use crate::report::{Finding, FlowStep};
use crate::rules::{self, Suppression};
use crate::RustFile;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that block the calling thread when invoked with no
/// arguments (`JoinHandle::join`; the zero-argument filter keeps
/// `Iterator::join`-alikes out).
const BLOCKING_ZERO_ARG_METHODS: &[&str] = &["join"];

/// Method names that block regardless of arity (channel receives,
/// listener accept).
const BLOCKING_METHODS: &[&str] = &["recv", "recv_timeout", "accept"];

/// Type segments whose associated free calls block on the network.
const BLOCKING_PATH_SEGMENTS: &[&str] = &["TcpStream"];

/// Container types whose `new`/`with_capacity` constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet"];

/// Method names that allocate a fresh owned value.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "clone"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Hot-path files whose every function is an R12 entry: the allocation
/// discipline of the event loop, arena, and payload pool is the whole
/// point of those files.
const HOT_FILES: &[&str] = &[
    "crates/netsim/src/event.rs",
    "crates/netsim/src/node.rs",
    "crates/netsim/src/bytes.rs",
];

/// The committed `float_accum.allow` inventory: one reviewed entry per
/// accumulation site, `<file>:<fn>:<lhs>: <why>` per line.
#[derive(Debug, Default)]
pub struct Inventory {
    entries: Vec<InvEntry>,
}

#[derive(Debug)]
struct InvEntry {
    file: String,
    fn_name: String,
    lhs: String,
    line: u32,
    used: bool,
}

/// The inventory's repo-relative path, used as the "file" of findings
/// about the inventory itself.
pub const INVENTORY_FILE: &str = "float_accum.allow";

impl Inventory {
    /// Parse the inventory text. Blank lines and `#` comments are
    /// skipped; a line that does not split into
    /// `<file>:<fn>:<lhs>: <why>` (all four parts non-empty) is a
    /// `bad-directive` finding — a malformed entry that silently
    /// excuses nothing is worse than no entry.
    pub fn parse(text: &str, findings: &mut Vec<Finding>) -> Inventory {
        let mut inv = Inventory::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = (idx + 1) as u32;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.splitn(4, ':');
            let (file, fn_name, lhs, why) = (
                parts.next().unwrap_or("").trim(),
                parts.next().unwrap_or("").trim(),
                parts.next().unwrap_or("").trim(),
                parts.next().unwrap_or("").trim(),
            );
            if file.is_empty() || fn_name.is_empty() || lhs.is_empty() || why.is_empty() {
                findings.push(Finding::new(
                    INVENTORY_FILE,
                    line,
                    "bad-directive",
                    "malformed inventory entry; expected `<file>:<fn>:<lhs>: <why>` \
                     with a non-empty justification",
                ));
                continue;
            }
            inv.entries.push(InvEntry {
                // The path into the simulator that R12 sees here is a
                // method-name resolution artifact (`parse` fans out);
                // this runs once at checker startup.
                file: file.to_string(), // steelcheck: allow(hot-path-alloc): startup config parse, not a sim path
                fn_name: fn_name.to_string(), // steelcheck: allow(hot-path-alloc): startup config parse, not a sim path
                lhs: lhs.to_string(), // steelcheck: allow(hot-path-alloc): startup config parse, not a sim path
                line,
                used: false,
            });
        }
        inv
    }

    /// Does an entry cover the accumulation of `lhs` in `fn_name` of
    /// `file`? First match wins and is marked used.
    fn try_excuse(&mut self, file: &str, fn_name: &str, lhs: &str) -> bool {
        for e in &mut self.entries {
            if e.file == file && e.fn_name == fn_name && e.lhs == lhs {
                e.used = true;
                return true;
            }
        }
        false
    }

    /// Flag entries that excused nothing: a stale inventory line claims
    /// an accumulation site that no longer exists, which means the
    /// work-list it feeds (ROADMAP item 2) is out of date.
    pub fn report_unused(&self, findings: &mut Vec<Finding>) {
        for e in &self.entries {
            if !e.used {
                findings.push(Finding::new(
                    INVENTORY_FILE,
                    e.line,
                    "unused-suppression",
                    &format!(
                        "inventory entry `{}:{}:{}` matches no float accumulation site; \
                         remove it (or fix the entry) so the cost-accumulator work-list \
                         stays accurate",
                        e.file, e.fn_name, e.lhs
                    ),
                ));
            }
        }
    }
}

/// Per-node analysis artifacts shared by the three rules.
struct NodeCfgs {
    /// Parallel to `g.nodes`: the function's CFG.
    cfgs: Vec<Cfg>,
}

fn build_cfgs(files: &[RustFile], g: &CallGraph) -> NodeCfgs {
    let float_names: Vec<BTreeSet<String>> =
        files.iter().map(|f| cfg::float_names(&f.lexed)).collect();
    let cfgs = g
        .nodes
        .iter()
        .map(|n| {
            let item = &files[n.file_idx].parsed.fns[n.fn_idx];
            cfg::build(&files[n.file_idx].lexed, item, &float_names[n.file_idx])
        })
        .collect();
    NodeCfgs { cfgs }
}

/// Run rules 11–13. `supps` is parallel to `files`; consulted
/// suppressions are marked used so the unused-suppression audit stays
/// accurate across all analysis layers. `inventory` is the parsed
/// repo-root `float_accum.allow`.
pub fn analyze(
    files: &[RustFile],
    g: &CallGraph,
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
    inventory: &mut Inventory,
) {
    let cfgs = build_cfgs(files, g);
    rule_lock_discipline(files, g, &cfgs, supps, findings);
    rule_hot_path_alloc(files, g, &cfgs, supps, findings);
    rule_float_accum_order(files, g, &cfgs, supps, findings, inventory);
}

/// Is the finding at `(file_idx, line)` excused by the allowlist or an
/// inline suppression for `rule` (marked used on match)?
fn excused(
    files: &[RustFile],
    supps: &mut [Vec<Suppression>],
    file_idx: usize,
    line: u32,
    rule: &str,
) -> bool {
    rules::allowlisted(&files[file_idx].rel, rule)
        || rules::try_suppress(&mut supps[file_idx], rule, line)
}

// ---------------------------------------------------------------- R11

/// A lock's workspace-global identity: crate-qualified field name.
/// Two `queue` mutexes in different crates stay distinct; two in the
/// same crate unify — a deliberate over-approximation (one spurious
/// order edge costs a justified suppression; splitting identities by
/// type would need inference the token layer cannot do).
fn qualify(crate_key: &str, lock: &str) -> String {
    format!("{crate_key}::{lock}")
}

/// The per-event held-lock states of one function under a given entry
/// state: for every block, the state *before* each event, in event
/// order. Derived from the [`flow::forward`] fixpoint so loop back
/// edges are honored.
fn event_states(
    cfg: &Cfg,
    crate_key: &str,
    entry: &BTreeSet<String>,
) -> Vec<Vec<BTreeSet<String>>> {
    let transfer = |b: usize, input: &BTreeSet<String>| {
        let mut state = input.clone();
        for e in &cfg.blocks[b].events {
            match e {
                Event::Acquire { site } => {
                    state.insert(qualify(crate_key, &cfg.locks[*site].lock));
                }
                Event::Release { site } => {
                    state.remove(&qualify(crate_key, &cfg.locks[*site].lock));
                }
                _ => {}
            }
        }
        state
    };
    let entries = flow::forward(cfg, entry.clone(), transfer);
    cfg.blocks
        .iter()
        .enumerate()
        .map(|(b, block)| {
            let mut state = entries[b].clone();
            let mut per_event = Vec::with_capacity(block.events.len());
            for e in &block.events {
                per_event.push(state.clone());
                match e {
                    Event::Acquire { site } => {
                        state.insert(qualify(crate_key, &cfg.locks[*site].lock));
                    }
                    Event::Release { site } => {
                        state.remove(&qualify(crate_key, &cfg.locks[*site].lock));
                    }
                    _ => {}
                }
            }
            per_event
        })
        .collect()
}

/// Is this call a direct blocking site? Returns a label for the
/// diagnostic.
fn blocking_label(call: &crate::parse::Call) -> Option<String> {
    match call.kind {
        CallKind::Method => {
            let name = call.name();
            if BLOCKING_ZERO_ARG_METHODS.contains(&name) && call.args.0 == call.args.1 {
                return Some(format!(".{name}()"));
            }
            if BLOCKING_METHODS.contains(&name) {
                return Some(format!(".{name}(..)"));
            }
            None
        }
        CallKind::Free => {
            if call
                .path
                .iter()
                .any(|seg| BLOCKING_PATH_SEGMENTS.contains(&seg.as_str()))
            {
                return Some(format!("{}(..)", call.path.join("::")));
            }
            None
        }
        CallKind::Macro => None,
    }
}

fn rule_lock_discipline(
    files: &[RustFile],
    g: &CallGraph,
    cfgs: &NodeCfgs,
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    // Interprocedural fixpoint: the set of locks that may be held on
    // entry to each function, seeded empty and grown by every call site
    // executed with locks held. `prov` records the first caller that
    // put a node's entry set above empty, giving each finding a
    // deterministic caller chain.
    let n_nodes = g.nodes.len();
    let mut entry_held: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n_nodes];
    let mut prov: Vec<Option<(usize, u32)>> = vec![None; n_nodes];
    let mut worklist: BTreeSet<usize> = (0..n_nodes).collect();
    while let Some(&id) = worklist.iter().next() {
        worklist.remove(&id);
        let n = &g.nodes[id];
        let cfg = &cfgs.cfgs[id];
        if cfg.locks.is_empty() && entry_held[id].is_empty() {
            continue; // nothing to propagate
        }
        let entry = entry_held[id].clone();
        let states = event_states(cfg, &n.crate_key, &entry);
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (ei, e) in block.events.iter().enumerate() {
                let Event::Call { call_idx } = e else { continue };
                let held = &states[b][ei];
                if held.is_empty() {
                    continue;
                }
                let call = &item.calls[*call_idx];
                for &callee in &n.resolved[*call_idx] {
                    let before = entry_held[callee].len();
                    entry_held[callee].extend(held.iter().cloned());
                    if entry_held[callee].len() != before {
                        if prov[callee].is_none() {
                            prov[callee] = Some((id, call.line));
                        }
                        worklist.insert(callee);
                    }
                }
            }
        }
    }

    // Second pass over the converged states: collect lock-order edges
    // and held-across-blocking findings.
    //
    // Order edges: (held L, acquiring M) ⇒ L→M, keyed to the first
    // (node-id, line) acquire site in iteration order. A self edge
    // (re-acquiring a lock already held) is an immediate finding: std
    // mutexes deadlock on relock.
    let mut order: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for id in 0..n_nodes {
        let n = &g.nodes[id];
        let cfg = &cfgs.cfgs[id];
        if cfg.locks.is_empty() && entry_held[id].is_empty() {
            continue;
        }
        let states = event_states(cfg, &n.crate_key, &entry_held[id]);
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (ei, e) in block.events.iter().enumerate() {
                let held = &states[b][ei];
                match e {
                    Event::Acquire { site } => {
                        let m = qualify(&n.crate_key, &cfg.locks[*site].lock);
                        let line = cfg.locks[*site].line;
                        for l in held {
                            if *l == m {
                                if !excused(files, supps, n.file_idx, line, "lock-discipline") {
                                    findings.push(Finding::with_flow(
                                        &n.file,
                                        line,
                                        "lock-discipline",
                                        &format!(
                                            "lock `{m}` acquired while already held; a std \
                                             mutex deadlocks on relock — pass the existing \
                                             guard down instead of re-locking"
                                        ),
                                        caller_flow(g, &prov, id, line),
                                    ));
                                }
                            } else {
                                order
                                    .entry((l.clone(), m.clone()))
                                    .or_insert((id, line));
                            }
                        }
                    }
                    Event::Call { call_idx } => {
                        if held.is_empty() {
                            continue;
                        }
                        let call = &item.calls[*call_idx];
                        let Some(label) = blocking_label(call) else {
                            continue;
                        };
                        if excused(files, supps, n.file_idx, call.line, "lock-discipline") {
                            continue;
                        }
                        let held_list = held.iter().cloned().collect::<Vec<_>>().join("`, `");
                        findings.push(Finding::with_flow(
                            &n.file,
                            call.line,
                            "lock-discipline",
                            &format!(
                                "`{label}` blocks while holding `{held_list}`; every other \
                                 thread needing that lock stalls for the full blocking \
                                 duration — release the guard first (scope it, or \
                                 drop(guard))"
                            ),
                            caller_flow(g, &prov, id, call.line),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }

    // Cycle check over the lock-order graph: for each edge a→b, can b
    // reach a through other edges? Each offending edge gets its own
    // finding at its first acquire site, rendering the full cycle, so
    // an AB/BA inversion is reported at both ends.
    let mut succs: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in order.keys() {
        succs.entry(a).or_default().push(b);
    }
    for ((a, b), &(node_id, line)) in &order {
        let Some(path) = lock_path(&succs, b, a) else {
            continue;
        };
        let n = &g.nodes[node_id];
        if excused(files, supps, n.file_idx, line, "lock-discipline") {
            continue;
        }
        let mut cycle: Vec<&str> = vec![a.as_str()];
        cycle.extend(path.iter().map(|s| s.as_str()));
        findings.push(Finding::new(
            &n.file,
            line,
            "lock-discipline",
            &format!(
                "lock-order cycle: `{}` — two threads taking these locks in opposite \
                 orders deadlock; pick one global order and re-nest the critical sections",
                cycle.join("` -> `")
            ),
        ));
    }
}

/// BFS path `from -> .. -> to` over the lock-order graph, inclusive of
/// both ends; `None` when unreachable.
fn lock_path<'a>(
    succs: &BTreeMap<&'a String, Vec<&'a String>>,
    from: &'a String,
    to: &'a String,
) -> Option<Vec<&'a String>> {
    let mut parent: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    parent.insert(from, from);
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![u];
            let mut cur = u;
            while parent[cur] != cur {
                cur = parent[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &v in succs.get(u).into_iter().flatten() {
            parent.entry(v).or_insert_with(|| {
                queue.push_back(v);
                u
            });
        }
    }
    None
}

/// The caller chain that carried locks into `id`, rendered entry-first
/// as flow steps ending at the finding site itself. Empty provenance
/// (the locks are all local) yields the single final step.
fn caller_flow(
    g: &CallGraph,
    prov: &[Option<(usize, u32)>],
    id: usize,
    line: u32,
) -> Vec<FlowStep> {
    let mut hops: Vec<(usize, u32)> = Vec::new();
    let mut cur = id;
    let mut seen = BTreeSet::new();
    while let Some((caller, call_line)) = prov[cur] {
        if !seen.insert(caller) {
            break; // provenance loop (mutual recursion): stop rendering
        }
        hops.push((caller, call_line));
        cur = caller;
    }
    hops.reverse();
    let mut flow: Vec<FlowStep> = hops
        .iter()
        .map(|&(caller, call_line)| {
            let node = &g.nodes[caller];
            FlowStep::new(&node.file, call_line, &node.qual)
        })
        .collect();
    let node = &g.nodes[id];
    flow.push(FlowStep::new(&node.file, line, &node.qual));
    if flow.len() == 1 {
        Vec::new() // a single local step adds nothing over file:line
    } else {
        flow
    }
}

// ---------------------------------------------------------------- R12

/// Is this call allocation-shaped? Returns a display label.
fn alloc_label(call: &crate::parse::Call) -> Option<String> {
    match call.kind {
        CallKind::Free => {
            let name = call.name();
            if (name == "new" || name == "with_capacity")
                && call.path.len() >= 2
                && ALLOC_TYPES.contains(&call.path[call.path.len() - 2].as_str())
            {
                return Some(format!("{}(..)", call.path.join("::")));
            }
            None
        }
        CallKind::Method => {
            let name = call.name();
            if ALLOC_METHODS.contains(&name) {
                return Some(format!(".{name}()"));
            }
            None
        }
        CallKind::Macro => {
            let name = call.name();
            if ALLOC_MACROS.contains(&name) {
                return Some(format!("{name}!(..)"));
            }
            None
        }
    }
}

fn rule_hot_path_alloc(
    files: &[RustFile],
    g: &CallGraph,
    cfgs: &NodeCfgs,
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    let mut entries = g.select(|n| {
        (matches!(n.self_ty.as_deref(), Some("Sim") | Some("Simulator"))
            && n.name.starts_with("run"))
            || HOT_FILES.contains(&n.file.as_str())
            || (n.file.starts_with("crates/xdpsim/") && n.name.starts_with("exec_"))
    });
    entries.sort_unstable();
    entries.dedup();
    let parent = g.reach(&entries);
    for n in &g.nodes {
        if parent[n.id].is_none() {
            continue;
        }
        let cfg = &cfgs.cfgs[n.id];
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        for block in &cfg.blocks {
            if block.loop_depth == 0 {
                continue;
            }
            for e in &block.events {
                let Event::Call { call_idx } = e else { continue };
                let call = &item.calls[*call_idx];
                let Some(label) = alloc_label(call) else {
                    continue;
                };
                if excused(files, supps, n.file_idx, call.line, "hot-path-alloc") {
                    continue;
                }
                findings.push(Finding::with_flow(
                    &n.file,
                    call.line,
                    "hot-path-alloc",
                    &format!(
                        "`{label}` allocates inside a loop on a simulation hot path; \
                         hoist it out of the loop or reuse a pooled buffer — the \
                         event-loop rearchitecture exists to keep allocation off the \
                         per-event path"
                    ),
                    g.flow_to(&parent, n.id),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- R13

fn rule_float_accum_order(
    files: &[RustFile],
    g: &CallGraph,
    cfgs: &NodeCfgs,
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
    inventory: &mut Inventory,
) {
    let mut entries = g.select(|n| {
        (n.name == "main" && n.file.starts_with("crates/bench/src/bin/"))
            || n.file == "crates/xdpsim/src/cost.rs"
    });
    entries.sort_unstable();
    entries.dedup();
    let parent = g.reach(&entries);

    // "Loopy" nodes: called (transitively) from inside *any*
    // function's loop — the caller need not itself be on an entry
    // path, because the entry cone is judged per flagged node below.
    // An accumulation in a loopy node runs per iteration even though
    // it is not lexically inside a loop — `ExecCost::charge`'s
    // `self.ns += ns` is the canonical case.
    let mut loop_callees: Vec<usize> = Vec::new();
    for n in &g.nodes {
        let cfg = &cfgs.cfgs[n.id];
        for block in &cfg.blocks {
            if block.loop_depth == 0 {
                continue;
            }
            for e in &block.events {
                if let Event::Call { call_idx } = e {
                    loop_callees.extend(n.resolved[*call_idx].iter().copied());
                }
            }
        }
    }
    loop_callees.sort_unstable();
    loop_callees.dedup();
    let loopy_parent = g.reach(&loop_callees);

    for n in &g.nodes {
        if parent[n.id].is_none() {
            continue;
        }
        let loopy = loopy_parent[n.id].is_some();
        let cfg = &cfgs.cfgs[n.id];
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        // (line, lhs-or-method label) sites to judge, in block order.
        let mut sites: Vec<(u32, String)> = Vec::new();
        for block in &cfg.blocks {
            let in_loop = block.loop_depth >= 1 || loopy;
            if !in_loop {
                continue;
            }
            for e in &block.events {
                match e {
                    Event::FloatAccum { line, lhs } => sites.push((*line, lhs.clone())),
                    Event::Call { call_idx } => {
                        let call = &item.calls[*call_idx];
                        if let Some(label) = float_fold_label(files, n.file_idx, call) {
                            sites.push((call.line, label));
                        }
                    }
                    _ => {}
                }
            }
        }
        sites.sort();
        sites.dedup();
        for (line, lhs) in sites {
            if inventory.try_excuse(&n.file, &n.name, &lhs) {
                continue;
            }
            if excused(files, supps, n.file_idx, line, "float-accum-order") {
                continue;
            }
            findings.push(Finding::with_flow(
                &n.file,
                line,
                "float-accum-order",
                &format!(
                    "f64 accumulation `{lhs}` runs per-iteration on a figure/cost path; \
                     its order is part of the committed figure bytes — justify it inline \
                     or add `{}:{}:{lhs}: <why>` to {INVENTORY_FILE}",
                    n.file, n.name
                ),
                g.flow_to(&parent, n.id),
            ));
        }
    }
}

/// Is this call a float-typed `sum`/`fold`? The turbofish tokens sit
/// between the method name and the argument span (`sum::<f64>()`), the
/// fold's float evidence inside the argument span.
fn float_fold_label(
    files: &[RustFile],
    file_idx: usize,
    call: &crate::parse::Call,
) -> Option<String> {
    if call.kind != CallKind::Method {
        return None;
    }
    let name = call.name();
    if name != "sum" && name != "fold" {
        return None;
    }
    let toks = &files[file_idx].lexed.tokens;
    let (scan_lo, scan_hi) = if name == "sum" {
        (call.name_idx, call.args.0)
    } else {
        (call.args.0, call.args.1)
    };
    let floaty = toks[scan_lo..scan_hi.min(toks.len())]
        .iter()
        .any(|t| {
            t.is_ident("f64")
                || t.is_ident("f32")
                || t.kind == crate::lexer::TokKind::Float
        });
    if floaty {
        Some(name.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse;
    use crate::walk::classify;

    fn file(rel: &str, src: &str) -> RustFile {
        let lexed = lex(src);
        let parsed = parse::parse(&lexed);
        RustFile {
            rel: rel.to_string(),
            class: classify(rel),
            lexed,
            parsed,
        }
    }

    fn run_flow(files: &[RustFile]) -> Vec<Finding> {
        let g = crate::callgraph::build(files);
        let mut supps: Vec<Vec<Suppression>> = files.iter().map(|_| Vec::new()).collect();
        let mut findings = Vec::new();
        let mut inv = Inventory::default();
        analyze(files, &g, &mut supps, &mut findings, &mut inv);
        findings.sort();
        findings
    }

    #[test]
    fn opposite_lock_orders_are_a_cycle() {
        let files = vec![file(
            "crates/steelpar/src/lib.rs",
            r#"
            pub fn ab() {
                let a = self.alpha.lock();
                let b = self.beta.lock();
                use_both(&a, &b);
            }
            pub fn ba() {
                let b = self.beta.lock();
                let a = self.alpha.lock();
                use_both(&a, &b);
            }
            "#,
        )];
        let findings = run_flow(&files);
        let cycles: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains("lock-order cycle"))
            .collect();
        assert_eq!(cycles.len(), 2, "both inverted edges report: {findings:?}");
        assert!(cycles[0].message.contains("steelpar::alpha"));
        assert!(cycles[0].message.contains("steelpar::beta"));
    }

    #[test]
    fn lock_held_across_join_reports_with_caller_chain() {
        let files = vec![file(
            "crates/steelpar/src/lib.rs",
            r#"
            pub fn outer() {
                let g = self.results.lock();
                finish(&g);
            }
            pub fn finish(g: &G) {
                handle.join();
            }
            "#,
        )];
        let findings = run_flow(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "lock-discipline");
        assert!(f.message.contains("steelpar::results"), "{}", f.message);
        assert_eq!(f.flow.len(), 2, "caller chain outer -> finish: {f:?}");
        assert!(f.flow[0].label.contains("outer"));
        assert!(f.flow[1].label.contains("finish"));
    }

    #[test]
    fn scoped_guard_released_before_join_is_clean() {
        let files = vec![file(
            "crates/steelpar/src/lib.rs",
            r#"
            pub fn f() {
                {
                    let g = self.results.lock();
                    g.push(1);
                }
                handle.join();
            }
            "#,
        )];
        assert!(run_flow(&files).is_empty());
    }

    #[test]
    fn alloc_in_sim_run_loop_is_flagged() {
        let files = vec![file(
            "crates/netsim/src/sim.rs",
            r#"
            impl Simulator {
                pub fn run_until(&mut self) {
                    while self.step() {
                        let scratch = Vec::new();
                        self.absorb(scratch);
                    }
                }
            }
            "#,
        )];
        let findings = run_flow(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "hot-path-alloc");
        assert!(findings[0].message.contains("Vec::new"));
    }

    #[test]
    fn float_accum_in_figure_loop_needs_inventory() {
        let files = vec![file(
            "crates/bench/src/bin/figx.rs",
            r#"
            fn main() {
                let mut total = 0.0;
                for s in samples {
                    total += s as f64;
                }
                emit(total);
            }
            "#,
        )];
        let findings = run_flow(&files);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, "float-accum-order");
        assert!(
            f.message
                .contains("crates/bench/src/bin/figx.rs:main:total:"),
            "message names the inventory key: {}",
            f.message
        );
    }

    #[test]
    fn inventory_entry_excuses_and_stale_entry_is_flagged() {
        let files = vec![file(
            "crates/bench/src/bin/figx.rs",
            "fn main() { let mut t = 0.0; for s in xs { t += s as f64; } }",
        )];
        let g = crate::callgraph::build(&files);
        let mut supps: Vec<Vec<Suppression>> = vec![Vec::new()];
        let mut findings = Vec::new();
        let mut inv = Inventory::parse(
            "# reviewed sites\n\
             crates/bench/src/bin/figx.rs:main:t: sweep order is spec'd ascending\n\
             crates/gone.rs:nobody:x: stale\n",
            &mut findings,
        );
        analyze(&files, &g, &mut supps, &mut findings, &mut inv);
        inv.report_unused(&mut findings);
        findings.sort();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unused-suppression");
        assert_eq!(findings[0].file, INVENTORY_FILE);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn malformed_inventory_line_is_a_bad_directive() {
        let mut findings = Vec::new();
        let inv = Inventory::parse("no-colons-here\n", &mut findings);
        assert!(inv.entries.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "bad-directive");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn charge_shaped_accum_is_caught_via_loopy_reach() {
        // `self.ns += ns` is not lexically in a loop, but `charge` is
        // called from the exec loop — the loopy extension must catch it.
        let files = vec![
            file(
                "crates/xdpsim/src/cost.rs",
                "impl ExecCost { pub fn charge(&mut self, ns: f64) { self.ns += ns; } }",
            ),
            file(
                "crates/xdpsim/src/lower.rs",
                r#"
                pub fn exec_lowered(cost: &mut ExecCost) {
                    for op in ops {
                        cost.charge(op.ns());
                    }
                }
                "#,
            ),
        ];
        let findings = run_flow(&files);
        let accum: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "float-accum-order")
            .collect();
        assert_eq!(accum.len(), 1, "{findings:?}");
        assert!(accum[0].message.contains("self.ns"));
        assert_eq!(accum[0].file, "crates/xdpsim/src/cost.rs");
    }
}
