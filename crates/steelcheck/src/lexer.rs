//! A small, comment- and string-aware Rust lexer.
//!
//! This is *not* a full Rust tokenizer — it is the minimum machinery
//! needed to scan source files for lint-relevant token sequences
//! without being fooled by comments, string/char literals, raw
//! strings, or lifetimes. It deliberately avoids `syn`/`proc-macro2`
//! so the checker stays zero-dependency and builds before anything
//! else in the workspace.
//!
//! Guarantees the rules in [`crate::rules`] rely on:
//!
//! - No token is ever produced from inside a comment or a string/char
//!   literal, so `"HashMap"` in a doc string never trips a rule.
//! - Line comments are captured verbatim (minus the `//`) so
//!   suppression directives (`// steelcheck: allow(rule)`) can be
//!   recovered with exact line numbers.
//! - Numeric literals are classified int vs float, including exponent
//!   forms (`1e9`), trailing-dot floats (`1.`), and suffixed literals
//!   (`1f64`, `2.5f32`), while `0..n` ranges and tuple indexing
//!   (`pair.0`) stay integers.
//! - Lifetimes (`'a`) are distinguished from char literals (`'a'`).

/// What kind of token this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e9`, `2f64`).
    Float,
    /// String, raw-string, byte-string, or char literal (content dropped).
    Literal,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators are fused (`::`, `==`, `!=`, ...).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokKind,
    /// Verbatim text (for `Literal` this is a placeholder, not content).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `//` comment, kept separately from the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Text after the leading `//` (or `/*`), untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub owns_line: bool,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-whitespace tokens in order.
    pub tokens: Vec<Token>,
    /// All comments (line and block), in order.
    pub comments: Vec<Comment>,
}

/// Two-character operators that are fused into one `Punct` token.
const TWO_CHAR_OPS: &[&str] = &[
    "::", "==", "!=", "<=", ">=", "..", "->", "=>", "&&", "||", "<<", ">>", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=",
];

/// Tokenize `src`. Never fails: unrecognized bytes become single-char
/// `Punct` tokens, and an unterminated literal consumes to end of file
/// (matching how rustc would already have rejected the file).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut line_has_token = false;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
                line_has_token = false;
            }
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect(),
                line,
                owns_line: !line_has_token,
            });
            i = j;
            continue;
        }
        // Block comment (nested, as in Rust).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let owns = !line_has_token;
            let mut depth = 1;
            let mut j = i + 2;
            let text_start = j;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                        line_has_token = false;
                    }
                    j += 1;
                }
            }
            let text_end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment {
                text: b[text_start..text_end.max(text_start)].iter().collect(),
                line: start_line,
                owns_line: owns,
            });
            i = j;
            continue;
        }
        // Raw strings and raw byte strings: r"..", r#".."#, br#".."#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start_line = line;
            let mut j = i;
            while j < n && (b[j] == 'r' || b[j] == 'b') {
                j += 1;
            }
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            debug_assert!(j < n && b[j] == '"');
            j += 1; // opening quote
            // Scan for closing quote followed by `hashes` hashes.
            'scan: while j < n {
                if b[j] == '"' {
                    let mut k = j + 1;
                    let mut seen = 0;
                    while k < n && seen < hashes && b[k] == '#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break 'scan;
                    }
                }
                if b[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "r\"...\"".into(),
                line: start_line,
            });
            line_has_token = true;
            i = j;
            continue;
        }
        // Regular and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "\"...\"".into(),
                line: start_line,
            });
            line_has_token = true;
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_lifetime(&b, i) {
                let mut j = i + 1;
                let start = j;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[start..j].iter().collect(),
                    line,
                });
                line_has_token = true;
                i = j;
                continue;
            }
            // Char literal: 'x', '\n', '\u{1F600}'.
            let mut j = i + 1;
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "'.'".into(),
                line,
            });
            line_has_token = true;
            i = j;
            continue;
        }
        // Identifier / keyword (incl. raw idents r#type — the raw-string
        // check above already ruled out r#"..).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            // Raw identifier prefix.
            if c == 'r' && i + 1 < n && b[i + 1] == '#' {
                j += 2;
            }
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let text: String = b[start..j].iter().collect();
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: text.trim_start_matches("r#").to_string(),
                line,
            });
            line_has_token = true;
            i = j;
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                j += 2;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
                // Fractional part — but not `..` (range) and not a
                // method/field access (`1.max(2)`, `pair.0` handled at
                // the dot: digit-then-ident means method call).
                if j < n && b[j] == '.' && !(j + 1 < n && b[j + 1] == '.') {
                    let next_is_ident =
                        j + 1 < n && (b[j + 1].is_alphabetic() || b[j + 1] == '_');
                    if !next_is_ident {
                        is_float = true;
                        j += 1;
                        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Exponent.
                if j < n && (b[j] == 'e' || b[j] == 'E') {
                    let mut k = j + 1;
                    if k < n && (b[k] == '+' || b[k] == '-') {
                        k += 1;
                    }
                    if k < n && b[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Type suffix (`u64`, `f32`, ...).
                if j < n && (b[j].is_alphabetic()) {
                    let sfx_start = j;
                    while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    let sfx: String = b[sfx_start..j].iter().collect();
                    if sfx == "f32" || sfx == "f64" {
                        is_float = true;
                    }
                }
            }
            let text: String = b[start..j].iter().collect();
            out.tokens.push(Token {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text,
                line,
            });
            line_has_token = true;
            i = j;
            continue;
        }
        // Punctuation: fuse two-char operators.
        let mut matched = false;
        if i + 1 < n {
            let pair: String = [b[i], b[i + 1]].iter().collect();
            if TWO_CHAR_OPS.contains(&pair.as_str()) {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: pair,
                    line,
                });
                line_has_token = true;
                i += 2;
                matched = true;
            }
        }
        if !matched {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            line_has_token = true;
            i += 1;
        }
    }
    out
}

/// Does a raw (byte) string literal start at `i`? (`r"`, `r#`+`"`,
/// `br"`, `rb` is not a thing; `b"` is handled by the caller.)
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= n || b[j] != 'r' {
            return false;
        }
    }
    if j >= n || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && b[j] == '"'
}

/// Is the `'` at `i` a lifetime rather than a char literal?
/// `'a'` → char; `'a` not followed by closing quote → lifetime.
fn is_lifetime(b: &[char], i: usize) -> bool {
    let n = b.len();
    if i + 1 >= n {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1.is_alphabetic() || c1 == '_') {
        return false; // '\n', '0', etc. → char literal
    }
    // Scan the identifier; a closing quote right after means char literal.
    let mut j = i + 1;
    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    !(j < n && b[j] == '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ comment */
            let s = "HashMap::new()";
            let r = r#"HashSet"#;
            let c = 'H';
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap" || s == "HashSet"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let x = 1; // steelcheck: allow(wall-clock)\n// solo\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].owns_line);
        assert!(lexed.comments[0].text.contains("steelcheck: allow"));
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].owns_line);
    }

    #[test]
    fn float_vs_int_classification() {
        let cases = [
            ("1.0", TokKind::Float),
            ("1.", TokKind::Float),
            ("1e9", TokKind::Float),
            ("2.5f32", TokKind::Float),
            ("3f64", TokKind::Float),
            ("42", TokKind::Int),
            ("0xff", TokKind::Int),
            ("1_000u64", TokKind::Int),
        ];
        for (src, kind) in cases {
            let lexed = lex(src);
            assert_eq!(lexed.tokens[0].kind, kind, "lexing {src:?}");
        }
    }

    #[test]
    fn ranges_and_tuple_access_stay_integers() {
        let lexed = lex("for i in 0..10 { pair.0; x.1.max(2) }");
        let floats: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .collect();
        assert!(floats.is_empty(), "unexpected floats: {floats:?}");
    }

    #[test]
    fn method_call_on_int_literal_is_not_float() {
        let lexed = lex("1.max(2)");
        assert_eq!(lexed.tokens[0].kind, TokKind::Int);
        assert_eq!(lexed.tokens[0].text, "1");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn two_char_operators_fuse() {
        let lexed = lex("a == b != c :: d .. e");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", ".."]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&"type".to_string()));
    }
}
