//! Workspace discovery and file classification.
//!
//! The walker visits the workspace in sorted order (determinism: the
//! report must be byte-identical run to run), collects `.rs` sources
//! and manifests, and classifies each file for rule scoping. It never
//! descends into `target/`, `.git/`, or any `fixtures/` directory —
//! fixture files contain deliberate violations for steelcheck's own
//! tests and must not fail the real workspace.

use crate::rules::FileClass;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file selected for scanning.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators (diagnostic key).
    pub rel: String,
    /// What kind of file this is.
    pub kind: FileKind,
}

/// File species the scanner understands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// Rust source.
    Rust,
    /// A `Cargo.toml` manifest.
    CargoToml,
    /// The workspace `Cargo.lock`.
    CargoLock,
}

/// Find the workspace root: walk up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.canonicalize()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace Cargo.toml found above the starting directory",
            ));
        }
    }
}

/// Collect every scannable file under `root`, sorted by relative path.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "fixtures" | "results") {
                continue;
            }
            walk_dir(root, &path, out)?;
            continue;
        }
        let kind = match name.as_str() {
            "Cargo.toml" => FileKind::CargoToml,
            "Cargo.lock" => FileKind::CargoLock,
            _ if name.ends_with(".rs") => FileKind::Rust,
            _ => continue,
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile {
            abs: path,
            rel,
            kind,
        });
    }
    Ok(())
}

/// Classify a Rust file by its workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let bench = rel.starts_with("crates/bench/");
    // Library code: under a crate's `src/` (or the root facade's
    // `src/`), excluding binaries. Tests, examples, and benches are
    // not library code.
    let in_src = rel.contains("/src/") || rel.starts_with("src/");
    let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    let in_tests = rel.contains("/tests/") || rel.starts_with("tests/");
    let in_examples = rel.contains("/examples/") || rel.starts_with("examples/");
    let lib_code = in_src && !is_bin && !in_tests && !in_examples;
    let stats_module = rel.ends_with("/stats.rs") || rel.ends_with("/stats/mod.rs");
    // The execution layer: steelpar owns the worker pool, steelserve
    // owns the sockets and the serving threads, and the bench harness
    // times real execution (which may reasonably thread).
    let exec = bench
        || rel.starts_with("crates/steelpar/")
        || rel.starts_with("crates/steelserve/");
    FileClass {
        bench,
        lib_code,
        stats_module,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let c = classify("crates/netsim/src/sim.rs");
        assert!(!c.bench && c.lib_code && !c.stats_module && !c.exec);

        let c = classify("crates/steelpar/src/lib.rs");
        assert!(c.exec && c.lib_code && !c.bench);

        let c = classify("crates/steelpar/tests/determinism.rs");
        assert!(c.exec && !c.lib_code);

        let c = classify("crates/steelserve/src/server.rs");
        assert!(c.exec && c.lib_code && !c.bench);

        let c = classify("crates/netsim/src/stats.rs");
        assert!(c.stats_module && c.lib_code);

        let c = classify("crates/bench/src/harness.rs");
        assert!(c.bench);

        let c = classify("crates/bench/src/bin/fig4.rs");
        assert!(c.bench && !c.lib_code);

        let c = classify("crates/steelcheck/src/main.rs");
        assert!(!c.lib_code, "binaries are not library code");

        let c = classify("tests/end_to_end.rs");
        assert!(!c.lib_code && !c.bench);

        let c = classify("examples/quickstart.rs");
        assert!(!c.lib_code);

        let c = classify("src/lib.rs");
        assert!(c.lib_code);
    }

    #[test]
    fn classification_edge_cases() {
        // A helper module nested below a tests/ directory is still test
        // code, not library code.
        let c = classify("crates/netsim/tests/support/helpers.rs");
        assert!(!c.lib_code);

        // tests/ or examples/ as a *crate name* must not be confused
        // with the directories: only path segments count.
        let c = classify("crates/testsuite/src/lib.rs");
        assert!(c.lib_code, "crate named `testsuite` is library code");

        // Nested bins and examples under a crate.
        let c = classify("crates/bench/src/bin/nested/tool.rs");
        assert!(c.bench && !c.lib_code);
        let c = classify("crates/netsim/examples/demo.rs");
        assert!(!c.lib_code);

        // stats detection requires the file itself, not the crate.
        let c = classify("crates/netsim/src/stats/mod.rs");
        assert!(c.stats_module);
        let c = classify("crates/netsim/src/statsig.rs");
        assert!(!c.stats_module);
    }

    #[test]
    fn missing_workspace_manifest_is_an_error() {
        // A directory tree with a crate-level Cargo.toml but no
        // `[workspace]` table anywhere above it.
        let dir = std::env::temp_dir().join("steelcheck_walk_no_ws");
        let inner = dir.join("deep/inner");
        fs::create_dir_all(&inner).expect("mkdir");
        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"lonely\"\nversion = \"0.0.0\"\n",
        )
        .expect("write manifest");
        let err = find_workspace_root(&inner);
        // The host temp dir could in principle live under some real
        // workspace; only assert when the walk genuinely escaped.
        if let Ok(found) = &err {
            assert!(
                !found.starts_with(&dir),
                "package-only manifest must not count as a workspace root"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.lock").is_file());
    }

    #[test]
    fn collect_skips_fixtures_and_sorts() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = collect(&root).expect("collect");
        assert!(files.iter().all(|f| !f.rel.contains("fixtures/")));
        let rels: Vec<_> = files.iter().map(|f| f.rel.clone()).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
        assert!(files
            .iter()
            .any(|f| f.rel == "Cargo.lock" && f.kind == FileKind::CargoLock));
    }
}
