//! A generic forward/backward dataflow framework over [`crate::cfg`]
//! graphs (layer 4).
//!
//! Same fixpoint discipline as xdpsim's interval verifier: a worklist
//! of block ids, a join-semilattice state joined at merge points, and
//! iteration to a fixed point. States are `BTreeSet`-shaped so every
//! run over the same graph produces the same result in the same order
//! — the determinism contract applies to the checker itself.
//!
//! The framework is *may*-analysis oriented: `join` is set union, and
//! unreachable blocks keep the bottom state, so a fact holds at a
//! block iff it holds on **some** path from the entry (exactly what a
//! "might this lock be held here?" question wants).

use crate::cfg::Cfg;
use std::collections::BTreeSet;

/// A join-semilattice: the state type a dataflow runs on.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// The least element; the initial state of every block.
    fn bottom() -> Self;
    /// Join `other` into `self`; returns true when `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;
}

impl JoinSemiLattice for BTreeSet<String> {
    fn bottom() -> Self {
        BTreeSet::new()
    }

    fn join_with(&mut self, other: &Self) -> bool {
        let before = self.len();
        self.extend(other.iter().cloned());
        self.len() != before
    }
}

/// A gen/kill transfer summary for one block: facts the block
/// introduces minus facts it removes, applied in the conventional
/// `out = gen ∪ (in − kill)` order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenKill {
    /// Facts the block generates (still live at its end).
    pub gen: BTreeSet<String>,
    /// Facts the block kills.
    pub kill: BTreeSet<String>,
}

impl GenKill {
    /// Apply this summary to a state.
    pub fn apply(&self, state: &mut BTreeSet<String>) {
        for k in &self.kill {
            state.remove(k);
        }
        state.extend(self.gen.iter().cloned());
    }

    /// Record that `fact` is generated at this point in the block
    /// (sequential composition: a later gen overrides an earlier kill).
    pub fn add_gen(&mut self, fact: &str) {
        self.kill.remove(fact);
        self.gen.insert(fact.to_string());
    }

    /// Record that `fact` is killed at this point in the block.
    pub fn add_kill(&mut self, fact: &str) {
        self.gen.remove(fact);
        self.kill.insert(fact.to_string());
    }
}

/// Run a forward dataflow to fixpoint. Returns the **entry** state of
/// every block; `transfer(block, in_state)` must be a pure function of
/// its arguments. Blocks unreachable from the entry keep
/// [`JoinSemiLattice::bottom`].
pub fn forward<L, F>(cfg: &Cfg, entry_state: L, mut transfer: F) -> Vec<L>
where
    L: JoinSemiLattice,
    F: FnMut(usize, &L) -> L,
{
    let mut input: Vec<L> = (0..cfg.blocks.len()).map(|_| L::bottom()).collect();
    input[cfg.entry] = entry_state;
    // A successor is (re)enqueued when its input changed — or when it
    // has never been processed, which a bottom-joins-bottom "no change"
    // would otherwise mask.
    let mut visited = vec![false; cfg.blocks.len()];
    let mut worklist: BTreeSet<usize> = BTreeSet::new();
    worklist.insert(cfg.entry);
    while let Some(&b) = worklist.iter().next() {
        worklist.remove(&b);
        visited[b] = true;
        let out = transfer(b, &input[b]);
        for &succ in &cfg.blocks[b].succs {
            if input[succ].join_with(&out) || !visited[succ] {
                worklist.insert(succ);
            }
        }
    }
    input
}

/// Run a backward dataflow to fixpoint. Returns the **exit** state of
/// every block (the state flowing backwards out of its start is
/// `transfer(block, exit_state)`). Blocks that cannot reach the exit
/// keep bottom.
pub fn backward<L, F>(cfg: &Cfg, exit_state: L, mut transfer: F) -> Vec<L>
where
    L: JoinSemiLattice,
    F: FnMut(usize, &L) -> L,
{
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); cfg.blocks.len()];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for &succ in &block.succs {
            preds[succ].push(b);
        }
    }
    let mut output: Vec<L> = (0..cfg.blocks.len()).map(|_| L::bottom()).collect();
    output[cfg.exit] = exit_state;
    let mut visited = vec![false; cfg.blocks.len()];
    let mut worklist: BTreeSet<usize> = BTreeSet::new();
    worklist.insert(cfg.exit);
    while let Some(&b) = worklist.iter().next() {
        worklist.remove(&b);
        visited[b] = true;
        let start = transfer(b, &output[b]);
        for &pred in &preds[b] {
            if output[pred].join_with(&start) || !visited[pred] {
                worklist.insert(pred);
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, float_names};
    use crate::lexer::lex;
    use crate::parse::parse;

    fn cfg_of(src: &str, name: &str) -> (Cfg, crate::parse::FnItem) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let item = parsed.fns.iter().find(|f| f.name == name).unwrap().clone();
        let names = float_names(&lexed);
        (build(&lexed, &item, &names), item)
    }

    /// Held-lock transfer: apply the block's acquire/release events.
    fn held_transfer(cfg: &Cfg) -> impl FnMut(usize, &BTreeSet<String>) -> BTreeSet<String> + '_ {
        |b, input| {
            let mut state = input.clone();
            for e in &cfg.blocks[b].events {
                match e {
                    crate::cfg::Event::Acquire { site } => {
                        state.insert(cfg.locks[*site].lock.clone());
                    }
                    crate::cfg::Event::Release { site } => {
                        state.remove(&cfg.locks[*site].lock);
                    }
                    _ => {}
                }
            }
            state
        }
    }

    #[test]
    fn forward_reaches_fixpoint_on_a_loop() {
        let src = r#"
            fn f() {
                let g = a.lock();
                loop {
                    if done() {
                        break;
                    }
                }
                after();
            }
        "#;
        let (cfg, _) = cfg_of(src, "f");
        let states = forward(&cfg, BTreeSet::new(), held_transfer(&cfg));
        // The lock is held entering every block reachable after the
        // acquire, including around the loop's back edge.
        let held_count = states.iter().filter(|s| s.contains("a")).count();
        assert!(held_count >= 3, "states: {states:?}");
        // The exit has seen the scope-end release... which lands in the
        // final block, so the *exit entry* state still shows `a` only if
        // the release block precedes it. Fixpoint must terminate — the
        // assertion above suffices for convergence.
    }

    #[test]
    fn join_is_union_across_branches() {
        let src = r#"
            fn f() {
                if cond() {
                    let g = a.lock();
                    if deeper() {
                        touch(&g);
                    }
                }
                after();
            }
        "#;
        let (cfg, item) = cfg_of(src, "f");
        let states = forward(&cfg, BTreeSet::new(), held_transfer(&cfg));
        // `forward` returns block *entry* states, so the held fact is
        // observable one branch deeper than the acquire; the guard
        // releases at the outer branch's closing scope, so the join
        // block must NOT have it.
        let touch_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.events.iter().any(|e| {
                    matches!(e, crate::cfg::Event::Call { call_idx }
                        if item.calls[*call_idx].name() == "touch")
                })
            })
            .unwrap();
        assert!(states[touch_block].contains("a"));
        let after_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.events.iter().any(|e| {
                    matches!(e, crate::cfg::Event::Call { call_idx }
                        if item.calls[*call_idx].name() == "after")
                })
            })
            .unwrap();
        assert!(
            !states[after_block].contains("a"),
            "scope-end release must reach the join: {states:?}"
        );
    }

    #[test]
    fn backward_flows_against_edges() {
        let src = "fn f() { if c() { x(); } tail(); }";
        let (cfg, _) = cfg_of(src, "f");
        // Seed a fact at the exit; backwards it must reach the entry.
        let mut seed = BTreeSet::new();
        seed.insert("live".to_string());
        let states = backward(&cfg, seed, |_, out| out.clone());
        assert!(states[cfg.entry].contains("live"));
    }

    #[test]
    fn gen_kill_sequential_composition() {
        let mut gk = GenKill::default();
        gk.add_gen("a");
        gk.add_kill("a"); // later kill wins
        gk.add_kill("b");
        gk.add_gen("b"); // later gen wins
        let mut state: BTreeSet<String> = ["a", "c"].iter().map(|s| s.to_string()).collect();
        gk.apply(&mut state);
        let got: Vec<&str> = state.iter().map(String::as_str).collect();
        assert_eq!(got, vec!["b", "c"]);
    }
}
