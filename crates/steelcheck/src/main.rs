//! `steelcheck` — the determinism & hermeticity gate.
//!
//! ```text
//! cargo run --release -p steelcheck                  # human-readable diagnostics
//! cargo run --release -p steelcheck -- --format json # machine-readable report
//! cargo run --release -p steelcheck -- --format sarif
//! cargo run --release -p steelcheck -- --list-rules
//! cargo run --release -p steelcheck -- --explain wallclock-reachable
//! cargo run --release -p steelcheck -- --list-allow
//! cargo run --release -p steelcheck -- --write-baseline known.txt
//! cargo run --release -p steelcheck -- --baseline known.txt
//! ```
//!
//! `--json` is kept as an alias for `--format json`.
//!
//! Baseline mode supports ratcheting a rule into a workspace with
//! pre-existing findings: `--write-baseline` records the current
//! finding set (one stable `file:line: rule: message` line each, sorted,
//! call-path flows excluded so refactors of *other* code don't churn
//! the file), and `--baseline` fails only on findings NOT in the
//! recorded set, printing just the new ones.
//!
//! Exit status: 0 when the workspace is clean (or, under `--baseline`,
//! when every finding is already recorded), 1 on any unsuppressed new
//! finding, 2 on usage or I/O errors.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

/// Output format selected on the command line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!(
                        "steelcheck: unknown format `{other}` (expected text, json, or sarif)"
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("steelcheck: --format requires an argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in steelcheck::rules::RULES {
                    println!("{:<22} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => match args.next() {
                Some(rule) => match steelcheck::rules::rule_info(&rule) {
                    Some(r) => {
                        println!("{}", r.id);
                        println!("  {}", r.summary);
                        println!();
                        println!("  {}", r.rationale);
                        if r.suppressible {
                            println!();
                            println!(
                                "  Suppress site-by-site with \
                                 `// steelcheck: allow({}): <why>`.",
                                r.id
                            );
                        } else {
                            println!();
                            println!("  This rule cannot be suppressed.");
                        }
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "steelcheck: unknown rule `{rule}` (see --list-rules)"
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("steelcheck: --explain requires a rule id");
                    return ExitCode::from(2);
                }
            },
            "--list-allow" => {
                for e in steelcheck::rules::ALLOWLIST {
                    println!("{} [{}]\n    {}", e.path, e.rule, e.why);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("steelcheck: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("steelcheck: --baseline requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("steelcheck: --write-baseline requires a file path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: steelcheck [--format text|json|sarif] [--root DIR] \
                     [--baseline FILE] [--write-baseline FILE] \
                     [--list-rules] [--explain RULE] [--list-allow]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("steelcheck: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let start = root_arg.unwrap_or_else(|| PathBuf::from("."));
    let root = match steelcheck::walk::find_workspace_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("steelcheck: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match steelcheck::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("steelcheck: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let mut out = String::new();
        for f in &report.findings {
            out.push_str(&f.display_base());
            out.push('\n');
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("steelcheck: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "steelcheck: wrote {} baseline finding(s) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("steelcheck: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let known: BTreeSet<&str> =
            text.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
        let new: Vec<_> = report
            .findings
            .iter()
            .filter(|f| !known.contains(f.display_base().as_str()))
            .collect();
        let resolved = known
            .iter()
            .filter(|l| !report.findings.iter().any(|f| f.display_base() == **l))
            .count();
        for f in &new {
            println!("{f}");
        }
        eprintln!(
            "steelcheck: {} new finding(s), {} baselined, {} baseline entr(ies) resolved",
            new.len(),
            report.findings.len() - new.len(),
            resolved
        );
        return if new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", report.to_sarif()),
        Format::Text => {
            for f in &report.findings {
                println!("{f}");
            }
            eprint!("{}", report.rule_summary());
            eprintln!(
                "steelcheck: {} finding(s) across {} Rust file(s), {} manifest(s)",
                report.findings.len(),
                report.rust_files,
                report.manifests
            );
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
