//! `steelcheck` — the determinism & hermeticity gate.
//!
//! ```text
//! cargo run --release -p steelcheck            # human-readable diagnostics
//! cargo run --release -p steelcheck -- --json  # machine-readable report
//! cargo run --release -p steelcheck -- --list-rules
//! cargo run --release -p steelcheck -- --list-allow
//! ```
//!
//! Exit status: 0 when the workspace is clean, 1 on any unsuppressed
//! finding, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for r in steelcheck::rules::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--list-allow" => {
                for e in steelcheck::rules::ALLOWLIST {
                    println!("{} [{}]\n    {}", e.path, e.rule, e.why);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("steelcheck: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: steelcheck [--json] [--root DIR] [--list-rules] [--list-allow]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("steelcheck: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let start = root_arg.unwrap_or_else(|| PathBuf::from("."));
    let root = match steelcheck::walk::find_workspace_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("steelcheck: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match steelcheck::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("steelcheck: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "steelcheck: {} finding(s) across {} Rust file(s), {} manifest(s)",
            report.findings.len(),
            report.rust_files,
            report.manifests
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
