//! The workspace-wide call graph.
//!
//! Nodes are the non-test [`crate::parse::FnItem`]s of every scanned
//! Rust file outside `tests/`, `benches/`, and `examples/` directories;
//! edges come from resolving each recorded call site against the
//! workspace's function index. Resolution is *conservative by
//! construction* — where the token-level view cannot decide, the graph
//! gains edges rather than losing them, because a missing edge would
//! let nondeterminism hide behind a helper while a spurious edge only
//! costs a justified suppression:
//!
//! - **Qualified calls** (`steelpar::run(..)`, `SimRng::from_seed(..)`)
//!   resolve by matching every written qualifier against a candidate's
//!   crate aliases (`netsim`, `steelworks_netsim`), its in-file module
//!   names (including the file stem), or its `impl` self type. A path
//!   rooted at `std`/`core`/`alloc` is external and produces no edge.
//! - **Bare calls** (`helper()`) prefer same-file candidates, then
//!   same-crate, then fall back to every function of that name in the
//!   workspace (imports are not tracked — `use x::helper` followed by
//!   `helper()` must still find `x::helper`).
//! - **Method calls** (`.step(..)`) use the "any fn of that name"
//!   fallback restricted to `impl`/`trait` functions: without type
//!   information, every method named `step` is a potential callee.
//!   This is exactly the bridge that carries reachability across
//!   trait-object dispatch (`dyn Device`), the place a lexical pass is
//!   structurally blind.
//!
//! All storage is `BTreeMap`/sorted-`Vec` based and node ids are
//! assigned in (file, source-order) sequence, so the graph — and every
//! diagnostic derived from it — is byte-deterministic.

use crate::parse::{Call, CallKind};
use crate::RustFile;
use std::collections::BTreeMap;

/// One function in the graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the [`CallGraph::nodes`] vector (== its own position).
    pub id: usize,
    /// Index of the owning file in the scan's file list.
    pub file_idx: usize,
    /// Index of the item in that file's [`crate::parse::ParsedFile::fns`].
    pub fn_idx: usize,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate key: the directory under `crates/`, or `steelworks` for
    /// the root facade.
    pub crate_key: String,
    /// Human-readable qualified name for diagnostics
    /// (`netsim::Sim::run_until`, `bench/fig4::main`).
    pub qual: String,
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` self type, when any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Names usable as path qualifiers for this node: in-file modules
    /// plus the file stem (`sim` for `src/sim.rs`).
    pub modules: Vec<String>,
    /// Resolved callee ids per recorded call site, parallel to the
    /// item's `calls` vector. Empty entries are external calls.
    pub resolved: Vec<Vec<usize>>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, id order.
    pub nodes: Vec<FnNode>,
    /// Forward adjacency: sorted, deduplicated callee ids per node.
    pub edges: Vec<Vec<usize>>,
    /// Name → node ids, for resolution and for tests.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// Path roots that always refer to code outside the workspace.
const EXTERNAL_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Derive the crate key for a workspace-relative path.
pub fn crate_key(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((dir, _)) = rest.split_once('/') {
            return dir.to_string();
        }
    }
    "steelworks".to_string()
}

/// Is this file part of the program graph (as opposed to integration
/// tests, cargo benches, or examples, which no entry point reaches)?
fn in_graph(rel: &str) -> bool {
    let excluded = ["tests/", "benches/", "examples/"];
    !excluded
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
}

fn file_stem(rel: &str) -> Option<&str> {
    let stem = rel.rsplit('/').next()?.strip_suffix(".rs")?;
    if matches!(stem, "lib" | "main" | "mod") {
        None
    } else {
        Some(stem)
    }
}

/// Build the graph over the scanned files.
pub fn build(files: &[RustFile]) -> CallGraph {
    let mut g = CallGraph::default();
    for (file_idx, f) in files.iter().enumerate() {
        if !in_graph(&f.rel) {
            continue;
        }
        let ckey = crate_key(&f.rel);
        for (fn_idx, item) in f.parsed.fns.iter().enumerate() {
            if item.in_test {
                continue;
            }
            let id = g.nodes.len();
            let mut modules = item.modules.clone();
            if let Some(stem) = file_stem(&f.rel) {
                modules.push(stem.to_string());
            }
            let qual = {
                let mut parts: Vec<&str> = Vec::new();
                let bin_name;
                if let Some(pos) = f.rel.find("/src/bin/") {
                    bin_name = format!(
                        "{}/{}",
                        ckey,
                        f.rel[pos + "/src/bin/".len()..].trim_end_matches(".rs")
                    );
                    parts.push(&bin_name);
                } else {
                    parts.push(&ckey);
                }
                for m in &item.modules {
                    parts.push(m);
                }
                if let Some(ty) = &item.self_ty {
                    parts.push(ty);
                }
                parts.push(&item.name);
                parts.join("::")
            };
            g.by_name
                .entry(item.name.clone())
                .or_default()
                .push(id);
            g.nodes.push(FnNode {
                id,
                file_idx,
                fn_idx,
                file: f.rel.clone(),
                crate_key: ckey.clone(),
                qual,
                name: item.name.clone(),
                self_ty: item.self_ty.clone(),
                line: item.line,
                modules,
                resolved: Vec::new(),
            });
        }
    }

    // Resolve every call site; edges are the union per caller.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for id in 0..g.nodes.len() {
        let caller = &g.nodes[id];
        let item = &files[caller.file_idx].parsed.fns[caller.fn_idx];
        let mut resolved = Vec::with_capacity(item.calls.len());
        for call in &item.calls {
            let callees = resolve(&g, caller, call);
            for &c in &callees {
                edges[id].push(c);
            }
            resolved.push(callees);
        }
        edges[id].sort_unstable();
        edges[id].dedup();
        g.nodes[id].resolved = resolved;
    }
    g.edges = edges;
    g
}

/// Resolve one call site to its candidate callee ids (sorted).
fn resolve(g: &CallGraph, caller: &FnNode, call: &Call) -> Vec<usize> {
    let name = call.name();
    let Some(candidates) = g.by_name.get(name) else {
        return Vec::new();
    };
    match call.kind {
        CallKind::Macro => Vec::new(),
        CallKind::Method => candidates
            .iter()
            .copied()
            .filter(|&c| g.nodes[c].self_ty.is_some())
            .collect(),
        CallKind::Free => {
            let quals = &call.path[..call.path.len() - 1];
            if quals
                .first()
                .is_some_and(|q| EXTERNAL_ROOTS.contains(&q.as_str()))
            {
                return Vec::new();
            }
            if quals.is_empty() {
                // Bare call: same file, then same crate, then anywhere.
                let same_file: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| g.nodes[c].file_idx == caller.file_idx)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let same_crate: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&c| g.nodes[c].crate_key == caller.crate_key)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                return candidates.clone();
            }
            candidates
                .iter()
                .copied()
                .filter(|&c| {
                    let n = &g.nodes[c];
                    quals.iter().all(|q| qual_matches(n, q))
                })
                .collect()
        }
    }
}

/// Does the written qualifier `q` plausibly denote the scope of `n`?
fn qual_matches(n: &FnNode, q: &str) -> bool {
    n.crate_key == q
        || format!("steelworks_{}", n.crate_key) == q
        || n.modules.iter().any(|m| m == q)
        || n.self_ty.as_deref() == Some(q)
}

impl CallGraph {
    /// Node ids matching a predicate, ascending.
    pub fn select(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| pred(n))
            .map(|n| n.id)
            .collect()
    }

    /// Multi-source BFS over forward edges. Returns, for every node,
    /// `Some(parent)` when reachable (`parent == id` for the sources
    /// themselves) and `None` otherwise. Sources are visited in the
    /// given order and adjacency is sorted, so the parent forest — and
    /// every path printed from it — is deterministic.
    pub fn reach(&self, sources: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in sources {
            if parent[s].is_none() {
                parent[s] = Some(s);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.edges[u] {
                if parent[v].is_none() {
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Reverse reachability: every node from which some node in
    /// `targets` can be reached (targets included).
    pub fn reaches_any(&self, targets: &[usize]) -> Vec<bool> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (u, outs) in self.edges.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut hit = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &t in targets {
            if !hit[t] {
                hit[t] = true;
                queue.push_back(t);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &rev[u] {
                if !hit[v] {
                    hit[v] = true;
                    queue.push_back(v);
                }
            }
        }
        hit
    }

    /// The node chain from a BFS source to `id`, source first.
    pub fn chain_to(&self, parent: &[Option<usize>], id: usize) -> Vec<usize> {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// The call path from a BFS source to `id`, rendered as
    /// `a -> b -> c` over qualified names.
    pub fn path_to(&self, parent: &[Option<usize>], id: usize) -> String {
        self.chain_to(parent, id)
            .iter()
            .map(|&n| self.nodes[n].qual.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// The call path from a BFS source to `id` as structured
    /// [`crate::report::FlowStep`]s (one per hop, entry first), for
    /// SARIF `codeFlows` emission.
    pub fn flow_to(&self, parent: &[Option<usize>], id: usize) -> Vec<crate::report::FlowStep> {
        self.chain_to(parent, id)
            .iter()
            .map(|&n| {
                let node = &self.nodes[n];
                crate::report::FlowStep::new(&node.file, node.line, &node.qual)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse;
    use crate::walk::classify;

    fn file(rel: &str, src: &str) -> RustFile {
        let lexed = lex(src);
        let parsed = parse::parse(&lexed);
        RustFile {
            rel: rel.to_string(),
            class: classify(rel),
            lexed,
            parsed,
        }
    }

    fn node<'a>(g: &'a CallGraph, qual: &str) -> &'a FnNode {
        g.nodes
            .iter()
            .find(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}: {:?}", g.nodes.iter().map(|n| &n.qual).collect::<Vec<_>>()))
    }

    #[test]
    fn qualified_and_bare_calls_resolve_across_crates() {
        let files = vec![
            file(
                "crates/bench/src/bin/figx.rs",
                "fn main() { steelworks_core::scenario(); helper(); }\nfn helper() {}",
            ),
            file("crates/core/src/lib.rs", "pub fn scenario() { step(); }\npub fn step() {}"),
        ];
        let g = build(&files);
        let main = node(&g, "bench/figx::main");
        let scenario = node(&g, "core::scenario");
        let helper = node(&g, "bench/figx::helper");
        assert!(g.edges[main.id].contains(&scenario.id), "steelworks_core:: qualifier");
        assert!(g.edges[main.id].contains(&helper.id), "same-file bare call");
        assert!(g.edges[scenario.id].contains(&node(&g, "core::step").id));
    }

    #[test]
    fn method_calls_fall_back_to_any_method_of_that_name() {
        let files = vec![
            file(
                "crates/netsim/src/sim.rs",
                "impl Sim { pub fn run_until(&mut self) { self.dev.handle(); } }",
            ),
            file(
                "crates/vplc/src/dev.rs",
                "impl Plc { pub fn handle(&mut self) {} }\npub fn handle_free() {}",
            ),
        ];
        let g = build(&files);
        let run = node(&g, "netsim::Sim::run_until");
        let handle = node(&g, "vplc::Plc::handle");
        assert!(g.edges[run.id].contains(&handle.id));
    }

    #[test]
    fn std_paths_and_unknown_names_are_external() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            "pub fn f() { std::mem::take(&mut x); no_such(); HashMap::new(); }",
        )];
        let g = build(&files);
        assert!(g.edges[0].is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn mismatched_qualifier_produces_no_edge() {
        let files = vec![
            file("crates/core/src/lib.rs", "pub fn f() { other::helper(); }"),
            file("crates/topo/src/graph.rs", "pub fn helper() {}"),
        ];
        let g = build(&files);
        let f = node(&g, "core::f");
        assert!(g.edges[f.id].is_empty(), "`other::` matches no scope of topo::helper");
        // But the crate key, file stem, and steelworks_ alias all match.
        for call in ["topo::helper()", "graph::helper()", "steelworks_topo::helper()"] {
            let files = vec![
                file("crates/core/src/lib.rs", &format!("pub fn f() {{ {call}; }}")),
                file("crates/topo/src/graph.rs", "pub fn helper() {}"),
            ];
            let g = build(&files);
            let f = node(&g, "core::f");
            assert_eq!(g.edges[f.id].len(), 1, "{call} should resolve");
        }
    }

    #[test]
    fn test_fns_and_test_dirs_stay_out_of_the_graph() {
        let files = vec![
            file(
                "crates/core/src/lib.rs",
                "pub fn real() {}\n#[cfg(test)]\nmod tests { fn helper() {} }",
            ),
            file("crates/core/tests/integration.rs", "fn test_helper() {}"),
            file("crates/bench/benches/ablate.rs", "fn bench_helper() {}"),
            file("examples/quickstart.rs", "fn main() {}"),
        ];
        let g = build(&files);
        let names: Vec<_> = g.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["real"], "{names:?}");
    }

    #[test]
    fn reach_and_paths_are_deterministic() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            "pub fn a() { b(); }\npub fn b() { c(); }\npub fn c() {}\npub fn lonely() {}",
        )];
        let g = build(&files);
        let a = node(&g, "core::a").id;
        let c = node(&g, "core::c").id;
        let lonely = node(&g, "core::lonely").id;
        let parent = g.reach(&[a]);
        assert!(parent[c].is_some());
        assert!(parent[lonely].is_none());
        assert_eq!(g.path_to(&parent, c), "core::a -> core::b -> core::c");
        let again = g.reach(&[a]);
        assert_eq!(parent, again);
    }

    #[test]
    fn reverse_reachability_marks_callers() {
        let files = vec![file(
            "crates/core/src/lib.rs",
            "pub fn top() { mid(); }\npub fn mid() { leaf(); }\npub fn leaf() {}\npub fn other() {}",
        )];
        let g = build(&files);
        let leaf = node(&g, "core::leaf").id;
        let hit = g.reaches_any(&[leaf]);
        assert!(hit[node(&g, "core::top").id]);
        assert!(hit[node(&g, "core::mid").id]);
        assert!(!hit[node(&g, "core::other").id]);
    }
}
