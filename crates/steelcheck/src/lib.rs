//! # steelcheck
//!
//! In-repo static analysis that enforces the workspace's determinism
//! and hermeticity contract at the source level, so a violation fails
//! the build the moment it is written instead of surfacing later as a
//! golden-output diff that nobody can localize.
//!
//! The analysis has four layers, each feeding the next:
//!
//! 1. **Lexical** ([`lexer`], [`rules`]) — a comment/string-aware token
//!    scan of each file in isolation; rules R1–R6 below.
//! 2. **Call graph** ([`parse`], [`callgraph`]) — a zero-dependency
//!    item/signature parser recovers functions and call expressions
//!    from the token stream, and name resolution links them into a
//!    workspace-wide graph. Resolution is deliberately conservative: a
//!    spurious edge costs at worst one justified suppression, a
//!    missing edge costs a silent hole in the contract.
//! 3. **Reachability** ([`reach`]) — BFS over the graph from the
//!    simulation entry points; rules R7–R9 below, each reporting the
//!    full call path from entry point to offending site.
//! 4. **Control flow & dataflow** ([`cfg`], [`flow`], [`flowrules`]) —
//!    per-function CFGs with lock-guard lifetimes and loop structure,
//!    a forward/backward fixpoint framework, and the interprocedural
//!    rules R11–R13 below: lock discipline, hot-path allocation, and
//!    float-accumulation order.
//!
//! The contract (README, "Static analysis & determinism contract"):
//!
//! - **R1 `nondet-collections`** — no `HashMap`/`HashSet` outside
//!   `crates/bench`: iteration order is per-process random and
//!   silently breaks bit-reproducibility of `results/*.txt`.
//! - **R2 `wall-clock`** — no `Instant`/`SystemTime` outside
//!   `crates/bench`: simulated time comes from the event scheduler.
//! - **R3 `unwrap-in-lib`** — no `.unwrap()`/`.expect(` in library
//!   non-test code: return an error or document the invariant.
//! - **R4 `manifest-hygiene`** — path-only dependencies, no
//!   `source =` entries in `Cargo.lock`, no `[patch]`/`[replace]`.
//! - **R5 `float-hygiene`** — no exact float equality; no
//!   sim-time → float casts outside a stats module.
//! - **R6 `thread-outside-exec`** — no thread spawning or cross-thread
//!   synchronization primitives outside the execution layer
//!   (`crates/steelpar` and `crates/bench`): the parallel runner's
//!   determinism argument rests on every scenario being
//!   single-threaded inside.
//! - **R7 `wallclock-reachable`** — no `Instant`/`SystemTime` read
//!   reachable from a simulation entry point (`netsim::Sim::run*` or a
//!   figure-binary `main`), even through helpers in crates R2 exempts.
//! - **R8 `panic-reachable`** — no `.unwrap()`/`.expect(`/`panic!`/
//!   `unreachable!` reachable from a figure-binary `main`; a figure
//!   run that dies mid-sweep leaves a truncated `results/*.txt`.
//! - **R9 `rng-entropy`** — every `SimRng` construction reachable from
//!   a figure binary must take its seed from an explicit literal,
//!   constant, or CLI argument — never from time or thread state.
//! - **R11 `lock-discipline`** — the workspace-wide lock-order graph
//!   must stay acyclic, and no lock may be held across a blocking call
//!   (`join`, channel `recv`, `accept`, `TcpStream` I/O), even when
//!   the lock was taken several callers up.
//! - **R12 `hot-path-alloc`** — no allocation-shaped call inside a
//!   loop of any function reachable from the simulator's `run*`
//!   methods, the event/arena/pool internals, or xdpsim's compiled
//!   `exec_*` paths.
//! - **R13 `float-accum-order`** — every f64 loop accumulation
//!   reachable from a figure binary or the cost-accounting layer must
//!   be justified inline or carried in the committed repo-root
//!   `float_accum.allow` inventory.
//!
//! Findings are suppressed site-by-site with
//! `// steelcheck: allow(<rule>): <justification>` (same line, or the
//! line above when the comment stands alone), or file-by-file through
//! the reviewed [`rules::ALLOWLIST`]. A directive naming an unknown
//! rule is itself a finding (`bad-directive`), and a directive that
//! excuses nothing is flagged `unused-suppression`; neither can be
//! suppressed.
//!
//! The tool is zero-dependency by design — it lexes and parses Rust
//! with its own scanner rather than `syn`, so it builds before
//! everything else and cannot be broken by the code it checks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod callgraph;
pub mod cfg;
pub mod flow;
pub mod flowrules;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod reach;
pub mod report;
pub mod rules;
pub mod walk;

use report::Report;
use std::fs;
use std::io;
use std::path::Path;

/// One Rust source file, lexed and parsed, as consumed by the call
/// graph and reachability layers.
#[derive(Debug)]
pub struct RustFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Path classification (bench / lib / stats / exec).
    pub class: rules::FileClass,
    /// Token stream and comments.
    pub lexed: lexer::Lexed,
    /// Recovered items: functions with their call expressions.
    pub parsed: parse::ParsedFile,
}

/// Run every rule over the workspace rooted at `root`.
///
/// Three phases: first every file is read, lexed, parsed, and scanned
/// lexically (R1–R6); then the call graph is built over all Rust files
/// at once and the reachability rules (R7–R9) run; then the CFG/
/// dataflow rules (R11–R13) run over the same graph, followed by the
/// unused-suppression audit (inline directives *and* the
/// `float_accum.allow` inventory). Returns the finalized (sorted,
/// deduplicated) report; I/O errors on individual files abort the
/// run — a lint pass that silently skips unreadable files cannot be
/// trusted to gate anything.
pub fn run(root: &Path) -> io::Result<Report> {
    let entries = walk::collect(root)?;
    let mut report = Report::default();
    let mut files: Vec<RustFile> = Vec::new();
    let mut supps: Vec<Vec<rules::Suppression>> = Vec::new();

    for f in &entries {
        let text = fs::read_to_string(&f.abs)?;
        match f.kind {
            walk::FileKind::Rust => {
                report.rust_files += 1;
                let lexed = lexer::lex(&text);
                let class = walk::classify(&f.rel);
                let mut s = rules::collect_suppressions(&lexed, &f.rel, &mut report.findings);
                rules::scan_rust(&f.rel, class, &lexed, &mut s, &mut report.findings);
                let parsed = parse::parse(&lexed);
                files.push(RustFile {
                    rel: f.rel.clone(),
                    class,
                    lexed,
                    parsed,
                });
                supps.push(s);
            }
            walk::FileKind::CargoToml => {
                report.manifests += 1;
                manifest::scan_cargo_toml(&f.rel, &text, &mut report.findings);
            }
            walk::FileKind::CargoLock => {
                report.manifests += 1;
                manifest::scan_cargo_lock(&f.rel, &text, &mut report.findings);
            }
        }
    }

    let graph = callgraph::build(&files);
    reach::analyze(&files, &graph, &mut supps, &mut report.findings);

    let inv_text = match fs::read_to_string(root.join(flowrules::INVENTORY_FILE)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut inventory = flowrules::Inventory::parse(&inv_text, &mut report.findings);
    flowrules::analyze(&files, &graph, &mut supps, &mut report.findings, &mut inventory);
    inventory.report_unused(&mut report.findings);

    for (file, s) in files.iter().zip(&supps) {
        rules::report_unused(&file.rel, s, &mut report.findings);
    }

    report.finalize();
    Ok(report)
}

/// Scan a single Rust source string as if it lived at `rel` inside the
/// workspace. Lexical rules only — the interprocedural layer needs the
/// whole workspace, so single-file callers (fixture tests, editor
/// integrations) get R1–R6 plus directive hygiene.
pub fn scan_source(rel: &str, text: &str) -> Vec<report::Finding> {
    let lexed = lexer::lex(text);
    let class = walk::classify(rel);
    let mut findings = Vec::new();
    let mut supps = rules::collect_suppressions(&lexed, rel, &mut findings);
    rules::scan_rust(rel, class, &lexed, &mut supps, &mut findings);
    rules::report_unused(rel, &supps, &mut findings);
    findings.sort();
    findings
}
