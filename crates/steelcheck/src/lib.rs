//! # steelcheck
//!
//! In-repo static analysis that enforces the workspace's determinism
//! and hermeticity contract at the source level, so a violation fails
//! the build the moment it is written instead of surfacing later as a
//! golden-output diff that nobody can localize.
//!
//! The contract (README, "Static analysis & determinism contract"):
//!
//! - **R1 `nondet-collections`** — no `HashMap`/`HashSet` outside
//!   `crates/bench`: iteration order is per-process random and
//!   silently breaks bit-reproducibility of `results/*.txt`.
//! - **R2 `wall-clock`** — no `Instant`/`SystemTime` outside
//!   `crates/bench`: simulated time comes from the event scheduler.
//! - **R3 `unwrap-in-lib`** — no `.unwrap()`/`.expect(` in library
//!   non-test code: return an error or document the invariant.
//! - **R4 `manifest-hygiene`** — path-only dependencies, no
//!   `source =` entries in `Cargo.lock`, no `[patch]`/`[replace]`.
//! - **R5 `float-hygiene`** — no exact float equality; no
//!   sim-time → float casts outside a stats module.
//! - **R6 `thread-outside-exec`** — no thread spawning or cross-thread
//!   synchronization primitives outside the execution layer
//!   (`crates/steelpar` and `crates/bench`): the parallel runner's
//!   determinism argument rests on every scenario being
//!   single-threaded inside.
//!
//! Findings are suppressed site-by-site with
//! `// steelcheck: allow(<rule>): <justification>` (same line, or the
//! line above when the comment stands alone), or file-by-file through
//! the reviewed [`rules::ALLOWLIST`]. A directive naming an unknown
//! rule is itself a finding (`bad-directive`) and cannot be
//! suppressed.
//!
//! The tool is zero-dependency by design — it lexes Rust with its own
//! comment/string-aware scanner ([`lexer`]) rather than `syn`, so it
//! builds before everything else and cannot be broken by the code it
//! checks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod walk;

use report::Report;
use std::fs;
use std::io;
use std::path::Path;

/// Run every rule over the workspace rooted at `root`.
///
/// Returns the finalized (sorted, deduplicated) report; I/O errors on
/// individual files abort the run — a lint pass that silently skips
/// unreadable files cannot be trusted to gate anything.
pub fn run(root: &Path) -> io::Result<Report> {
    let files = walk::collect(root)?;
    let mut report = Report::default();
    for f in &files {
        let text = fs::read_to_string(&f.abs)?;
        match f.kind {
            walk::FileKind::Rust => {
                report.rust_files += 1;
                let lexed = lexer::lex(&text);
                let class = walk::classify(&f.rel);
                rules::scan_rust(&f.rel, class, &lexed, &mut report.findings);
            }
            walk::FileKind::CargoToml => {
                report.manifests += 1;
                manifest::scan_cargo_toml(&f.rel, &text, &mut report.findings);
            }
            walk::FileKind::CargoLock => {
                report.manifests += 1;
                manifest::scan_cargo_lock(&f.rel, &text, &mut report.findings);
            }
        }
    }
    report.finalize();
    Ok(report)
}

/// Scan a single Rust source string as if it lived at `rel` inside the
/// workspace. Used by fixture tests and editor integrations.
pub fn scan_source(rel: &str, text: &str) -> Vec<report::Finding> {
    let lexed = lexer::lex(text);
    let class = walk::classify(rel);
    let mut findings = Vec::new();
    rules::scan_rust(rel, class, &lexed, &mut findings);
    findings.sort();
    findings
}
