//! Reachability and taint rules over the call graph (rules 7–9).
//!
//! The lexical rules (R1–R6) see each file in isolation; these rules
//! see the program. Their shared shape: pick the *entry points* that
//! define "a simulation run" or "a figure pipeline", walk the
//! conservative call graph, and flag *sources* — wall-clock reads,
//! panic sites, ambient-entropy seeds — that are reachable from them,
//! attaching the call path as a structured flow (rendered inline as
//! `(via a -> b -> c)`, and as SARIF `codeFlows`) so the finding is
//! actionable without re-deriving the analysis by hand:
//!
//! - **R7 `wallclock-reachable`** — no `Instant`/`SystemTime` source
//!   reachable from a simulation entry point (`netsim::Sim::run*`, a
//!   figure binary's `main`). Only `crates/bench` harness code may
//!   touch the host clock. This closes the hole R2 cannot see: a
//!   wall-clock read hidden two helpers deep in another crate, or one
//!   whose own line was justified for R2 but that a later refactor
//!   wired into a simulation path.
//! - **R8 `panic-reachable`** — no `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/`todo!`/`unimplemented!` reachable from a figure
//!   binary's `main`, except sites carrying a written invariant (an
//!   inline `panic-reachable` or `unwrap-in-lib` suppression).
//! - **R9 `rng-entropy`** — every `SimRng` construction reachable from
//!   a figure binary must take its seed from an explicit literal,
//!   constant, or CLI value; a seed expression that reads the host
//!   clock or thread state — directly or through any function that
//!   transitively can — is flagged.
//!
//! All traversals run over sorted adjacency from sorted entry lists,
//! so findings (including the printed paths) are byte-deterministic.

use crate::callgraph::{CallGraph, FnNode};
use crate::lexer::TokKind;
use crate::parse::CallKind;
use crate::report::Finding;
use crate::rules::{self, Suppression};
use crate::RustFile;

/// Identifiers that read the host clock.
const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Macro names that unconditionally panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run rules 7–9. `supps` is parallel to `files`; consulted
/// suppressions are marked used so the unused-suppression audit stays
/// accurate across both analysis layers.
pub fn analyze(
    files: &[RustFile],
    g: &CallGraph,
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    let owners = token_owners(files, g);

    let fig_mains = g.select(|n| n.name == "main" && n.file.starts_with("crates/bench/src/bin/"));
    let sim_runs = g.select(|n| {
        n.file.starts_with("crates/netsim/")
            && n.self_ty.as_deref() == Some("Sim")
            && n.name.starts_with("run")
    });

    rule_wallclock_reachable(files, g, &owners, &fig_mains, &sim_runs, supps, findings);
    let fig_parent = g.reach(&fig_mains);
    rule_panic_reachable(files, g, &owners, &fig_parent, supps, findings);
    rule_rng_entropy(files, g, &owners, &fig_parent, supps, findings);
}

/// For every file, map each token index to the node owning it (the
/// innermost function body containing the token), so a nested item's
/// tokens are never attributed to its enclosing function.
fn token_owners(files: &[RustFile], g: &CallGraph) -> Vec<Vec<Option<usize>>> {
    let mut owners: Vec<Vec<Option<usize>>> =
        files.iter().map(|f| vec![None; f.lexed.tokens.len()]).collect();
    // Nodes are in (file, source-order); an inner fn starts later than
    // its enclosing fn, so later assignment wins == innermost wins.
    for n in &g.nodes {
        let (lo, hi) = files[n.file_idx].parsed.fns[n.fn_idx].body;
        for slot in &mut owners[n.file_idx][lo..hi.min(files[n.file_idx].lexed.tokens.len())] {
            *slot = Some(n.id);
        }
    }
    owners
}

/// Token-level sources owned by `node`: `(line, text)` for each ident
/// in `idents` inside the node's body (nested items excluded).
fn ident_sites(files: &[RustFile], owners: &[Vec<Option<usize>>], node: &FnNode, idents: &[&str]) -> Vec<(u32, String)> {
    let toks = &files[node.file_idx].lexed.tokens;
    let (lo, hi) = files[node.file_idx].parsed.fns[node.fn_idx].body;
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        if owners[node.file_idx][i] != Some(node.id) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && idents.contains(&t.text.as_str()) {
            out.push((t.line, t.text.clone()));
        }
    }
    out
}

/// Does the node's body read thread state or the host clock directly?
fn is_entropy_source(files: &[RustFile], owners: &[Vec<Option<usize>>], node: &FnNode) -> bool {
    let toks = &files[node.file_idx].lexed.tokens;
    let (lo, hi) = files[node.file_idx].parsed.fns[node.fn_idx].body;
    for i in lo..hi.min(toks.len()) {
        if owners[node.file_idx][i] != Some(node.id) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if WALLCLOCK_IDENTS.contains(&t.text.as_str()) {
            return true;
        }
        if t.text == "thread"
            && ((i + 1 < toks.len() && toks[i + 1].is_punct("::"))
                || (i > 0 && toks[i - 1].is_punct("::")))
        {
            return true;
        }
    }
    false
}

/// `.unwrap()` / `.expect(` sites owned by `node`, as `(line, label)`.
fn unwrap_sites(files: &[RustFile], owners: &[Vec<Option<usize>>], node: &FnNode) -> Vec<(u32, &'static str)> {
    let toks = &files[node.file_idx].lexed.tokens;
    let (lo, hi) = files[node.file_idx].parsed.fns[node.fn_idx].body;
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        if owners[node.file_idx][i] != Some(node.id) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        if !(i > 0 && toks[i - 1].is_punct(".")) || !(i + 1 < toks.len() && toks[i + 1].is_punct("(")) {
            continue;
        }
        if t.text == "unwrap" {
            if i + 2 < toks.len() && toks[i + 2].is_punct(")") {
                out.push((t.line, ".unwrap()"));
            }
        } else {
            out.push((t.line, ".expect(..)"));
        }
    }
    out
}

/// Is the finding at `(file_idx, line)` excused by the allowlist or an
/// inline suppression for any of `rule_ids` (first match wins and is
/// marked used)?
fn excused(
    files: &[RustFile],
    supps: &mut [Vec<Suppression>],
    file_idx: usize,
    line: u32,
    rule_ids: &[&str],
) -> bool {
    for rule in rule_ids {
        if rules::allowlisted(&files[file_idx].rel, rule) {
            return true;
        }
        if rules::try_suppress(&mut supps[file_idx], rule, line) {
            return true;
        }
    }
    false
}

fn rule_wallclock_reachable(
    files: &[RustFile],
    g: &CallGraph,
    owners: &[Vec<Option<usize>>],
    fig_mains: &[usize],
    sim_runs: &[usize],
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    let mut entries: Vec<usize> = fig_mains.iter().chain(sim_runs).copied().collect();
    entries.sort_unstable();
    entries.dedup();
    let parent = g.reach(&entries);
    for n in &g.nodes {
        if parent[n.id].is_none() || n.file.starts_with("crates/bench/") {
            continue;
        }
        for (line, tok) in ident_sites(files, owners, n, WALLCLOCK_IDENTS) {
            if excused(files, supps, n.file_idx, line, &["wallclock-reachable"]) {
                continue;
            }
            findings.push(Finding::with_flow(
                &n.file,
                line,
                "wallclock-reachable",
                &format!(
                    "`{tok}` reads the host clock on a simulation path; simulated time \
                     must come from the event scheduler — only crates/bench harness code \
                     may touch wall-clock time"
                ),
                g.flow_to(&parent, n.id),
            ));
        }
    }
}

fn rule_panic_reachable(
    files: &[RustFile],
    g: &CallGraph,
    owners: &[Vec<Option<usize>>],
    fig_parent: &[Option<usize>],
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    for n in &g.nodes {
        if fig_parent[n.id].is_none() {
            continue;
        }
        let mut sites: Vec<(u32, String, bool)> = Vec::new();
        for (line, label) in unwrap_sites(files, owners, n) {
            sites.push((line, label.to_string(), true));
        }
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        for call in &item.calls {
            if call.kind == CallKind::Macro && PANIC_MACROS.contains(&call.name()) {
                sites.push((call.line, format!("{}!(..)", call.name()), false));
            }
        }
        sites.sort();
        for (line, label, is_unwrap) in sites {
            let excuses: &[&str] = if is_unwrap {
                &["panic-reachable", "unwrap-in-lib"]
            } else {
                &["panic-reachable"]
            };
            if excused(files, supps, n.file_idx, line, excuses) {
                continue;
            }
            findings.push(Finding::with_flow(
                &n.file,
                line,
                "panic-reachable",
                &format!(
                    "`{label}` is a panic site reachable from a figure binary; return an \
                     error, or record the invariant with \
                     `// steelcheck: allow(panic-reachable): <why>`"
                ),
                g.flow_to(fig_parent, n.id),
            ));
        }
    }
}

fn rule_rng_entropy(
    files: &[RustFile],
    g: &CallGraph,
    owners: &[Vec<Option<usize>>],
    fig_parent: &[Option<usize>],
    supps: &mut [Vec<Suppression>],
    findings: &mut Vec<Finding>,
) {
    // Functions that (transitively) read the host clock or thread
    // state, bench included: seeding from a timing harness is exactly
    // the bug this rule exists to catch.
    let direct: Vec<usize> = g
        .nodes
        .iter()
        .filter(|n| is_entropy_source(files, owners, n))
        .map(|n| n.id)
        .collect();
    let tainted = g.reaches_any(&direct);

    for n in &g.nodes {
        if fig_parent[n.id].is_none() {
            continue;
        }
        let item = &files[n.file_idx].parsed.fns[n.fn_idx];
        let toks = &files[n.file_idx].lexed.tokens;
        for (ci, call) in item.calls.iter().enumerate() {
            if call.kind != CallKind::Free
                || call.path.len() < 2
                || call.path[call.path.len() - 2] != "SimRng"
            {
                continue;
            }
            let mut reason: Option<String> = None;
            // Direct ambient reads inside the seed expression.
            for i in call.args.0..call.args.1.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokKind::Ident {
                    continue;
                }
                if WALLCLOCK_IDENTS.contains(&t.text.as_str()) {
                    reason = Some(format!("the seed expression reads `{}`", t.text));
                    break;
                }
                if t.text == "thread" && i + 1 < toks.len() && toks[i + 1].is_punct("::") {
                    reason = Some("the seed expression reads thread state".to_string());
                    break;
                }
            }
            // Calls inside the seed expression that reach an entropy source.
            if reason.is_none() {
                'nested: for (cj, inner) in item.calls.iter().enumerate() {
                    if cj == ci || inner.name_idx < call.args.0 || inner.name_idx >= call.args.1 {
                        continue;
                    }
                    for &callee in &n.resolved[cj] {
                        if tainted[callee] {
                            reason = Some(format!(
                                "the seed flows from `{}`, which reaches a wall-clock or \
                                 thread-state read",
                                g.nodes[callee].qual
                            ));
                            break 'nested;
                        }
                    }
                }
            }
            let Some(reason) = reason else { continue };
            if excused(files, supps, n.file_idx, call.line, &["rng-entropy"]) {
                continue;
            }
            findings.push(Finding::with_flow(
                &n.file,
                call.line,
                "rng-entropy",
                &format!(
                    "`SimRng` seeded from ambient entropy: {reason}; figure pipelines \
                     must seed from an explicit literal, constant, or CLI value"
                ),
                g.flow_to(fig_parent, n.id),
            ));
        }
    }
}
