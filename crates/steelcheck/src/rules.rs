//! The lint rules enforcing the determinism contract.
//!
//! Each rule scans the token stream produced by [`crate::lexer`] and
//! emits [`Finding`]s. Rules are deliberately *over-approximate* where
//! precise analysis would need type information: e.g. R1 flags every
//! `HashMap` mention rather than only iterated ones, because iteration
//! is one `for` loop away from any map and the cost of a false
//! positive is a one-line suppression with a written justification.
//!
//! | rule id                | contract clause                                   |
//! |------------------------|---------------------------------------------------|
//! | `nondet-collections`   | R1: no `HashMap`/`HashSet` outside `crates/bench` |
//! | `wall-clock`           | R2: no `Instant`/`SystemTime` outside `crates/bench` |
//! | `unwrap-in-lib`        | R3: no `.unwrap()`/`.expect(` in library non-test code |
//! | `manifest-hygiene`     | R4: path-only deps, no `source =` in Cargo.lock   |
//! | `float-hygiene`        | R5: no float `==`/`!=`, no sim-time → float casts outside stats |
//! | `thread-outside-exec`  | R6: no thread spawning or cross-thread sync outside the execution layer |
//! | `network-outside-serve`| R10: no raw sockets (`std::net`) outside the serving/execution layer |
//!
//! The interprocedural rules R7–R9 live in [`crate::reach`]; the
//! CFG/dataflow rules R11–R13 (`lock-discipline`, `hot-path-alloc`,
//! `float-accum-order`) live in [`crate::flowrules`].

use crate::lexer::{Lexed, TokKind, Token};
use crate::report::Finding;

/// One entry in the rule table: the single source of truth behind
/// `--list-rules`, `--explain`, and the SARIF rule metadata.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (`wall-clock`, `panic-reachable`, ...).
    pub id: &'static str,
    /// One-line summary for listings.
    pub summary: &'static str,
    /// One-paragraph rationale for `--explain`.
    pub rationale: &'static str,
    /// Whether `// steelcheck: allow(<id>)` may name this rule. The
    /// meta-diagnostics (`bad-directive`, `unused-suppression`) are
    /// deliberately unsuppressible: silencing the auditor defeats it.
    pub suppressible: bool,
}

/// The rule table, in rule-number order, meta-diagnostics last.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "nondet-collections",
        summary: "no HashMap/HashSet outside crates/bench (R1)",
        rationale: "std's hash collections seed RandomState per process, so iteration \
                    order — and anything downstream of it: event ordering, FDB flooding \
                    order, report ordering — varies run to run. One iterated HashMap in a \
                    hot path silently destroys the byte-identical reproduction of \
                    results/*.txt. Use BTreeMap/BTreeSet, or sort before iterating.",
        suppressible: true,
    },
    RuleInfo {
        id: "wall-clock",
        summary: "no Instant/SystemTime outside crates/bench (R2)",
        rationale: "Simulated time comes from the event scheduler's integer Nanos clock; a \
                    host-clock read makes results depend on the machine and the load it is \
                    under. Only the bench harness, which times real execution on purpose, \
                    may touch Instant or SystemTime. This is the lexical (per-site) rule; \
                    wallclock-reachable closes the interprocedural hole.",
        suppressible: true,
    },
    RuleInfo {
        id: "unwrap-in-lib",
        summary: "no .unwrap()/.expect( in library non-test code (R3)",
        rationale: "Library panics turn recoverable conditions into aborts of a whole \
                    figure run. Each remaining site must either return an error or carry a \
                    written invariant in an inline suppression, so the panic surface is an \
                    audited list rather than an accident.",
        suppressible: true,
    },
    RuleInfo {
        id: "manifest-hygiene",
        summary: "path-only deps; no external sources in Cargo.lock (R4)",
        rationale: "The workspace builds fully offline with --frozen. A registry, git, or \
                    bare-version dependency — or a `source =` line in Cargo.lock, or a \
                    [patch]/[replace] section — would reintroduce the network into the \
                    build and unpin the toolchain from the committed tree.",
        suppressible: true,
    },
    RuleInfo {
        id: "float-hygiene",
        summary: "no float ==/!=; no sim-time→float casts outside stats (R5)",
        rationale: "Exact float equality is a latent portability bug, and converting \
                    simulated durations to floats before the reporting edge lets rounding \
                    feed back into scheduling decisions. Sim-time arithmetic stays integer \
                    nanoseconds; floats appear only in stats modules and final reports.",
        suppressible: true,
    },
    RuleInfo {
        id: "thread-outside-exec",
        summary: "no threads/sync primitives outside the execution layer (R6)",
        rationale: "The parallel runner's determinism argument rests on every scenario \
                    being single-threaded inside: a stray spawn in a device model would \
                    race RNG draws and event ordering. Threads and cross-thread sync \
                    primitives live only in crates/steelpar, crates/steelserve, and \
                    crates/bench.",
        suppressible: true,
    },
    RuleInfo {
        id: "wallclock-reachable",
        summary: "no wall-clock read reachable from a simulation entry point (R7)",
        rationale: "Interprocedural closure of wall-clock: an Instant/SystemTime read \
                    hidden two calls deep behind a helper in another crate breaks \
                    determinism exactly as much as an inline one, and is exactly what a \
                    lexical rule cannot see. Entry points are netsim::Sim::run* and the \
                    figure binaries' main; only crates/bench code may touch the host \
                    clock. Findings print the offending call path.",
        suppressible: true,
    },
    RuleInfo {
        id: "panic-reachable",
        summary: "no panic site reachable from a figure binary (R8)",
        rationale: "A panic anywhere in the call graph below a figure binary's main can \
                    abort a published-results run halfway. unwrap/expect/panic!/ \
                    unreachable!/todo!/unimplemented! sites reachable from a figure main \
                    are flagged with their full call path; sites carrying a written \
                    invariant (an inline panic-reachable or unwrap-in-lib suppression) \
                    are the audited exceptions.",
        suppressible: true,
    },
    RuleInfo {
        id: "rng-entropy",
        summary: "SimRng seeds must be explicit, never ambient (R9)",
        rationale: "Every SimRng construction reachable from a figure binary must take \
                    its seed from an explicit literal, constant, or CLI value. A seed \
                    expression that reads the host clock or thread state — directly, or \
                    through any function that transitively can — makes every downstream \
                    draw irreproducible while looking innocently like a plain integer.",
        suppressible: true,
    },
    RuleInfo {
        id: "network-outside-serve",
        summary: "no raw sockets outside the serving/execution layer (R10)",
        rationale: "Simulated networks never touch host sockets: every packet the device \
                    models exchange lives on the integer-nanosecond event clock. A \
                    TcpStream or UdpSocket inside a model would couple scenario behavior \
                    to real I/O timing and remote peer state, silently breaking the \
                    byte-identical contract. Real networking belongs to the serving \
                    layer: std::net lives only in crates/steelserve, crates/steelpar, \
                    and crates/bench.",
        suppressible: true,
    },
    RuleInfo {
        id: "lock-discipline",
        summary: "consistent lock order; no lock held across a blocking call (R11)",
        rationale: "The serving layer's liveness argument is a lock-order argument: two \
                    threads acquiring the same pair of mutexes in opposite orders is a \
                    deadlock waiting for load, and a guard held across a blocking call \
                    (JoinHandle::join, channel recv, TcpStream I/O) stalls every other \
                    thread needing that lock for the full blocking duration. The checker \
                    builds each function's guard-lifetime CFG, propagates held-lock sets \
                    along call edges, and demands the workspace-wide lock-order graph \
                    stay acyclic. Release the guard first (scope it, or drop(guard)), \
                    or split the critical section.",
        suppressible: true,
    },
    RuleInfo {
        id: "hot-path-alloc",
        summary: "no allocation-shaped calls in loops on simulation hot paths (R12)",
        rationale: "The campus-scale rearchitecture (arena nodes, pooled payloads, \
                    calendar queue) exists to get allocation out of the per-event path; \
                    one Vec::new or clone() in a loop reachable from Sim::run*, the \
                    event/arena/pool internals, or xdpsim's exec_* quietly re-introduces \
                    the cost at 10M events/sec scale. Hoist the allocation out of the \
                    loop, reuse a pooled buffer, or justify the site inline.",
        suppressible: true,
    },
    RuleInfo {
        id: "float-accum-order",
        summary: "f64 loop accumulation on figure/cost paths needs a justification (R13)",
        rationale: "Float addition is not associative: the order a loop accumulates f64 \
                    values in IS part of the committed figure bytes, and any refactor \
                    that reorders it (parallel chunking, re-associating block sums) \
                    silently moves results/*.txt. Every `+=`/`*=`/sum-shaped f64 \
                    accumulation in a loop reachable from a figure main or the cost \
                    accounting must carry an inline justification or an entry in the \
                    committed float_accum.allow inventory — which doubles as the \
                    work-list for re-specifying the cost accumulator.",
        suppressible: true,
    },
    RuleInfo {
        id: "bad-directive",
        summary: "malformed or unknown steelcheck suppression directive",
        rationale: "A typo'd suppression that silently does nothing is worse than a \
                    failing build: the author believes a site is justified when nothing \
                    is suppressed (or the wrong thing is). Malformed directives and \
                    unknown rule names are reported and cannot themselves be suppressed.",
        suppressible: false,
    },
    RuleInfo {
        id: "unused-suppression",
        summary: "a steelcheck: allow(...) comment suppresses nothing",
        rationale: "Suppressions are an audited debt list; one that no longer matches any \
                    finding is stale documentation that hides real exemptions among dead \
                    ones and survives refactors unexamined. Delete the comment — if the \
                    violation returns, the rule will say so. Unsuppressible, so the \
                    allowlist cannot rot quietly.",
        suppressible: false,
    },
];

/// Stable identifiers of every suppressible rule, rule-number order.
pub const ALL_RULES: &[&str] = &[
    "nondet-collections",
    "wall-clock",
    "unwrap-in-lib",
    "manifest-hygiene",
    "float-hygiene",
    "thread-outside-exec",
    "wallclock-reachable",
    "panic-reachable",
    "rng-entropy",
    "network-outside-serve",
    "lock-discipline",
    "hot-path-alloc",
    "float-accum-order",
];

/// Is `rule` a known suppressible rule id? Used to reject typo'd
/// suppressions (and attempts to suppress the meta-diagnostics).
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|r| r.id == rule && r.suppressible)
}

/// Look up a rule's table entry by id.
pub fn rule_info(rule: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == rule)
}

/// How a source file is classified for rule scoping. Derived from its
/// workspace-relative path by [`crate::walk`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileClass {
    /// Under `crates/bench/` — the measurement harness, exempt from
    /// determinism rules (it times real execution on purpose).
    pub bench: bool,
    /// Library (non-test, non-binary, non-example) source: a file under
    /// `src/` that is not `main.rs` and not under `src/bin/`.
    pub lib_code: bool,
    /// A statistics module (`stats.rs`), where converting simulated
    /// durations to floats for aggregation is the module's purpose.
    pub stats_module: bool,
    /// Part of the execution/serving layer (`crates/steelpar/`,
    /// `crates/steelserve/`, or the bench harness): the only code
    /// allowed to spawn threads, use cross-thread synchronization
    /// primitives, or open host sockets.
    pub exec: bool,
}

/// Per-file, per-rule allowlist entry with a recorded justification.
///
/// Allowlists are for *files whose purpose conflicts with a rule*
/// (e.g. a model whose math is inherently floating-point); one-off
/// sites should use an inline `// steelcheck: allow(rule): why`
/// suppression instead so the justification sits next to the code.
#[derive(Clone, Copy, Debug)]
pub struct AllowEntry {
    /// Workspace-relative path, `/`-separated.
    pub path: &'static str,
    /// Rule id this entry disables for the file.
    pub rule: &'static str,
    /// Why the exemption is sound. Surfaced by `steelcheck --list-allow`.
    pub why: &'static str,
}

/// The built-in allowlist. Keep this short: every entry is a standing
/// exemption reviewed in code review, not an escape hatch.
pub const ALLOWLIST: &[AllowEntry] = &[
    AllowEntry {
        path: "crates/netsim/src/devices.rs",
        rule: "float-hygiene",
        why: "cycle-delay statistics: converts closed NanoDur samples to µs for \
              jitter CDFs; all sim-time arithmetic stays integer upstream",
    },
    AllowEntry {
        path: "crates/rtnet/src/ptp.rs",
        rule: "float-hygiene",
        why: "servo gain math on measured offsets is the PTP model itself; \
              corrections are rounded back to integer nanoseconds before applying",
    },
    AllowEntry {
        path: "crates/xdpsim/src/xdp.rs",
        rule: "float-hygiene",
        why: "per-variant latency reporting converts final NanoDur samples to µs \
              for summaries; the event clock never consumes these floats",
    },
];

/// Is `path` exempt from `rule` via the built-in [`ALLOWLIST`]?
pub fn allowlisted(path: &str, rule: &str) -> bool {
    ALLOWLIST.iter().any(|e| e.path == path && e.rule == rule)
}

/// One inline `// steelcheck: allow(<rule>): why` directive, with the
/// usage bit the unused-suppression audit keys off. A directive is
/// *used* when it actually excuses a finding, in either the lexical or
/// the interprocedural layer.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Rule id the directive names.
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Standalone comments also shield the following line.
    pub covers_next: bool,
    /// Set once the directive excuses at least one finding.
    pub used: bool,
}

/// Mark-and-test: does a directive in `supps` cover (`rule`, `line`)?
/// The first matching directive is marked used.
pub fn try_suppress(supps: &mut [Suppression], rule: &str, line: u32) -> bool {
    for s in supps.iter_mut() {
        if s.rule == rule && (s.line == line || (s.covers_next && s.line + 1 == line)) {
            s.used = true;
            return true;
        }
    }
    false
}

/// Run the lexical rules (R1–R6) over one file. Suppressions consumed
/// here are marked used in `supps`; the caller owns the later
/// unused-suppression audit (after the interprocedural layer has had
/// its chance to consume them too).
pub fn scan_rust(
    path: &str,
    class: FileClass,
    lexed: &Lexed,
    supps: &mut [Suppression],
    findings: &mut Vec<Finding>,
) {
    let mut raw: Vec<Finding> = Vec::new();
    if !class.bench {
        rule_nondet_collections(path, lexed, &mut raw);
        rule_wall_clock(path, lexed, &mut raw);
        rule_float_hygiene(path, class, lexed, &mut raw);
    }
    if class.lib_code && !class.bench {
        rule_unwrap_in_lib(path, lexed, &mut raw);
    }
    if !class.exec {
        rule_thread_outside_exec(path, lexed, &mut raw);
        rule_network_outside_serve(path, lexed, &mut raw);
    }

    for f in raw {
        if allowlisted(path, &f.rule) {
            continue;
        }
        if try_suppress(supps, &f.rule, f.line) {
            continue;
        }
        findings.push(f);
    }
}

/// Extract `steelcheck: allow(<rule>)` directives from comments.
/// A directive suppresses matching findings on its own line and, when
/// the comment owns its line, on the following line.
///
/// Unknown rule names are themselves reported: a typo'd suppression
/// that silently does nothing is worse than a failing build.
pub fn collect_suppressions(
    lexed: &Lexed,
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation —
        // a directive shown there as an example must not take effect.
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(idx) = c.text.find("steelcheck:") else {
            continue;
        };
        let rest = c.text[idx + "steelcheck:".len()..].trim_start();
        let Some(args) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
            .and_then(|s| s.split(')').next())
        else {
            findings.push(Finding::new(
                path,
                c.line,
                "bad-directive",
                "malformed steelcheck directive; expected `steelcheck: allow(<rule>)`",
            ));
            continue;
        };
        for rule in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if !is_known_rule(rule) {
                // `bad-directive` is deliberately not in ALL_RULES, so a
                // typo'd suppression can never suppress its own report.
                findings.push(Finding::new(
                    path,
                    c.line,
                    "bad-directive",
                    &format!("suppression names unknown rule `{rule}`"),
                ));
                continue;
            }
            // A comment that owns its line shields the next line too;
            // a trailing comment shields only its own line.
            out.push(Suppression {
                rule: rule.to_string(),
                line: c.line,
                covers_next: c.owns_line,
                used: false,
            });
        }
    }
    out
}

/// Emit an `unused-suppression` finding for every directive that
/// excused nothing in either analysis layer. Call after both layers
/// have run.
pub fn report_unused(path: &str, supps: &[Suppression], findings: &mut Vec<Finding>) {
    for s in supps {
        if !s.used {
            findings.push(Finding::new(
                path,
                s.line,
                "unused-suppression",
                &format!(
                    "`steelcheck: allow({})` suppresses nothing; delete the stale \
                     directive (if the violation returns, the rule will report it)",
                    s.rule
                ),
            ));
        }
    }
}

/// R1: `HashMap`/`HashSet` anywhere outside the bench crate.
fn rule_nondet_collections(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding::new(
                path,
                t.line,
                "nondet-collections",
                &format!(
                    "{} iteration order is per-process random and breaks \
                     bit-reproducibility; use BTreeMap/BTreeSet or sort before iterating",
                    t.text
                ),
            ));
        }
    }
}

/// R2: wall-clock time sources outside the bench crate. Simulated time
/// must come from the event scheduler, never the host clock.
fn rule_wall_clock(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        // Exact-text ident match: `Instant::now`, `std::time::Instant`,
        // and `SystemTime` all hit; `InstantReport` does not.
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            out.push(Finding::new(
                path,
                t.line,
                "wall-clock",
                &format!(
                    "`{}` reads the host clock; simulation time must come from \
                     the event scheduler (bench harness code is exempt)",
                    t.text
                ),
            ));
        }
    }
}

/// R3: `.unwrap()` / `.expect(` in library non-test code. Test modules
/// (`#[cfg(test)]`, `#[test]`) are skipped by region.
fn rule_unwrap_in_lib(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let skip = test_regions(&lexed.tokens);
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if skip.iter().any(|&(lo, hi)| i >= lo && i < hi) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        let preceded_by_dot = i > 0 && toks[i - 1].is_punct(".");
        let followed_by_paren = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        if !(preceded_by_dot && followed_by_paren) {
            continue;
        }
        // `.unwrap()` must be a *call* with no arguments; `.expect(..)`
        // takes the message. Both are flagged.
        if t.text == "unwrap" && !(i + 2 < toks.len() && toks[i + 2].is_punct(")")) {
            continue; // `.unwrap(x)` is some other method (not Option/Result)
        }
        out.push(Finding::new(
            path,
            t.line,
            "unwrap-in-lib",
            &format!(
                ".{}() in library code; return an error or document the invariant \
                 with `// steelcheck: allow(unwrap-in-lib): <why>`",
                t.text
            ),
        ));
    }
}

/// R6: thread spawning and cross-thread synchronization outside the
/// execution layer. "Parallel across scenarios, serial within a
/// simulation" only holds if nothing below `steelpar` spawns: a thread
/// inside a scenario would race its RNG draws and event order.
/// Over-approximate like R1: any `thread::` path segment or a
/// synchronization-primitive ident is flagged, sites with a written
/// invariant suppress inline.
fn rule_thread_outside_exec(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    const SYNC_IDENTS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "JoinHandle", "mpsc"];
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_thread_path = t.text == "thread"
            && ((i + 1 < toks.len() && toks[i + 1].is_punct("::"))
                || (i > 0 && toks[i - 1].is_punct("::")));
        let is_sync = SYNC_IDENTS.contains(&t.text.as_str()) || t.text.starts_with("Atomic");
        if !is_thread_path && !is_sync {
            continue;
        }
        out.push(Finding::new(
            path,
            t.line,
            "thread-outside-exec",
            &format!(
                "`{}` spawns or synchronizes threads outside the execution layer; \
                 scenarios must stay single-threaded — fan out in crates/steelpar, \
                 or document the invariant with \
                 `// steelcheck: allow(thread-outside-exec): <why>`",
                t.text
            ),
        ));
    }
}

/// R10: raw sockets outside the serving/execution layer. The
/// steelserve subsystem owns all real networking — a socket anywhere
/// else would let simulation code observe host I/O timing and peer
/// state. Over-approximate like R6: any `net` path segment (as in
/// `std::net::...`) or a socket-type ident is flagged; sites with a
/// written invariant suppress inline.
fn rule_network_outside_serve(path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    const SOCKET_IDENTS: &[&str] = &["TcpListener", "TcpStream", "UdpSocket"];
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_net_path = t.text == "net"
            && ((i + 1 < toks.len() && toks[i + 1].is_punct("::"))
                || (i > 0 && toks[i - 1].is_punct("::")));
        let is_socket = SOCKET_IDENTS.contains(&t.text.as_str());
        if !is_net_path && !is_socket {
            continue;
        }
        out.push(Finding::new(
            path,
            t.line,
            "network-outside-serve",
            &format!(
                "`{}` opens or names a host socket outside the serving layer; \
                 simulated packets never touch std::net — serve through \
                 crates/steelserve, or document the invariant with \
                 `// steelcheck: allow(network-outside-serve): <why>`",
                t.text
            ),
        ));
    }
}

/// Token index ranges `[lo, hi)` covered by `#[cfg(test)]` / `#[test]`
/// items (the attribute through the end of the item's brace block).
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct("#") || i + 1 >= toks.len() || !toks[i + 1].is_punct("[") {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1;
        let mut is_test_attr = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
            } else if toks[j].is_ident("test") {
                is_test_attr = true;
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes, then the item: everything up to
        // the end of its first top-level brace block (or a `;` for
        // items without a body).
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let mut d = 1;
            j += 2;
            while j < toks.len() && d > 0 {
                if toks[j].is_punct("[") {
                    d += 1;
                } else if toks[j].is_punct("]") {
                    d -= 1;
                }
                j += 1;
            }
        }
        let mut brace_depth = 0usize;
        let mut entered = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct("}") {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(";") && !entered {
                j += 1;
                break;
            }
            j += 1;
        }
        regions.push((attr_start, j));
        i = j;
    }
    regions
}

/// R5: float hygiene.
///
/// (a) `==` / `!=` with a float-literal operand — exact float equality
///     is a latent nondeterminism and portability bug.
/// (b) casting a simulated duration accessor straight to `f32`/`f64`
///     (`.as_nanos() as f64`) outside a stats module — sim-time
///     arithmetic must stay integer; floats are for final reporting.
fn rule_float_hygiene(path: &str, class: FileClass, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // (a) float equality.
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_lhs = i > 0 && toks[i - 1].kind == TokKind::Float;
            let float_rhs = i + 1 < toks.len() && toks[i + 1].kind == TokKind::Float;
            if float_lhs || float_rhs {
                out.push(Finding::new(
                    path,
                    t.line,
                    "float-hygiene",
                    "exact float equality comparison; compare integers or use an \
                     explicit tolerance",
                ));
            }
        }
        // (b) sim-time → float cast.
        if class.stats_module {
            continue;
        }
        const TIME_ACCESSORS: &[&str] = &["as_nanos", "as_micros", "as_millis", "as_secs"];
        if t.kind == TokKind::Ident
            && TIME_ACCESSORS.contains(&t.text.as_str())
            && i + 4 < toks.len()
            && toks[i + 1].is_punct("(")
            && toks[i + 2].is_punct(")")
            && toks[i + 3].is_ident("as")
            && (toks[i + 4].is_ident("f64") || toks[i + 4].is_ident("f32"))
        {
            out.push(Finding::new(
                path,
                t.line,
                "float-hygiene",
                &format!(
                    ".{}() as {} converts sim time to float outside a stats module; \
                     keep scheduler arithmetic integer and convert only in stats/reporting",
                    t.text, toks[i + 4].text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, class: FileClass) -> Vec<Finding> {
        let lexed = lex(src);
        let mut out = Vec::new();
        let mut supps = collect_suppressions(&lexed, "test.rs", &mut out);
        scan_rust("test.rs", class, &lexed, &mut supps, &mut out);
        out
    }

    #[test]
    fn rule_table_is_consistent() {
        // Every suppressible id appears in ALL_RULES and vice versa,
        // ids are unique, and every entry documents itself.
        let suppressible: Vec<&str> = RULES.iter().filter(|r| r.suppressible).map(|r| r.id).collect();
        assert_eq!(suppressible, ALL_RULES.to_vec());
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len(), "duplicate rule id");
        for r in RULES {
            assert!(!r.summary.is_empty() && !r.rationale.is_empty(), "{}", r.id);
        }
        assert!(!is_known_rule("unused-suppression"), "meta rules are unsuppressible");
        assert!(!is_known_rule("bad-directive"));
        assert!(is_known_rule("panic-reachable"));
    }

    #[test]
    fn suppression_usage_is_tracked() {
        let lexed = lex(
            "// steelcheck: allow(nondet-collections): lookup-only\n\
             use std::collections::HashMap;\n\
             // steelcheck: allow(wall-clock): stale, nothing here\n\
             let x = 1;\n",
        );
        let mut out = Vec::new();
        let mut supps = collect_suppressions(&lexed, "test.rs", &mut out);
        scan_rust("test.rs", LIB, &lexed, &mut supps, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert!(supps[0].used, "consumed by the HashMap finding");
        assert!(!supps[1].used, "nothing to suppress");
        report_unused("test.rs", &supps, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
        assert_eq!(out[0].line, 3);
    }

    const LIB: FileClass = FileClass {
        bench: false,
        lib_code: true,
        stats_module: false,
        exec: false,
    };

    #[test]
    fn hashmap_flagged_and_suppressed() {
        let hit = run("use std::collections::HashMap;", LIB);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "nondet-collections");

        let ok = run(
            "// steelcheck: allow(nondet-collections): lookup-only\nuse std::collections::HashMap;",
            LIB,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn trailing_suppression_covers_its_own_line() {
        let ok = run(
            "use std::collections::HashMap; // steelcheck: allow(nondet-collections): x",
            LIB,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unknown_rule_in_suppression_is_reported() {
        let hit = run("// steelcheck: allow(no-such-rule)\nlet x = 1;", LIB);
        assert_eq!(hit.len(), 1);
        assert!(hit[0].message.contains("unknown rule"));
    }

    #[test]
    fn doc_comment_directives_are_inert() {
        // Neither a bad-directive report nor an active suppression.
        let hits = run(
            "/// Suppress with `// steelcheck: allow(bogus)`.\npub fn f() {}",
            LIB,
        );
        assert!(hits.is_empty(), "{hits:?}");
        let hits = run(
            "/// steelcheck: allow(nondet-collections)\nuse std::collections::HashMap;",
            LIB,
        );
        assert_eq!(hits.len(), 1, "doc comments must not suppress: {hits:?}");
    }

    #[test]
    fn unwrap_in_test_module_ignored() {
        let src = r#"
            pub fn lib_code(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let hits = run(src, LIB);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let hits = run("pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }", LIB);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn float_equality_flagged() {
        let hits = run("pub fn f(x: f64) -> bool { x == 1.0 }", LIB);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "float-hygiene");
    }

    #[test]
    fn simtime_float_cast_flagged_outside_stats() {
        let src = "pub fn f(d: NanoDur) -> f64 { d.as_nanos() as f64 }";
        assert_eq!(run(src, LIB).len(), 1);
        let stats = FileClass {
            stats_module: true,
            ..LIB
        };
        assert!(run(src, stats).is_empty());
    }

    #[test]
    fn bench_class_exempt_from_determinism_rules() {
        let bench = FileClass {
            bench: true,
            lib_code: false,
            stats_module: false,
            exec: true,
        };
        let src = "use std::time::Instant; use std::collections::HashMap;";
        assert!(run(src, bench).is_empty());
    }

    #[test]
    fn thread_primitives_flagged_outside_exec() {
        for src in [
            "pub fn f() { std::thread::spawn(|| {}); }",
            "use std::thread;",
            "use std::sync::Mutex;",
            "static N: AtomicU64 = AtomicU64::new(0);",
            "use std::sync::mpsc;",
        ] {
            let hits = run(src, LIB);
            assert!(
                hits.iter().all(|h| h.rule == "thread-outside-exec") && !hits.is_empty(),
                "{src}: {hits:?}"
            );
        }
    }

    #[test]
    fn thread_as_plain_ident_or_arc_not_flagged() {
        // A variable named `thread` without a path separator, and `Arc`
        // (immutable sharing is deterministic) are fine.
        for src in [
            "pub fn f(thread: u32) -> u32 { thread + 1 }",
            "use std::sync::Arc;",
        ] {
            let hits = run(src, LIB);
            assert!(hits.is_empty(), "{src}: {hits:?}");
        }
    }

    #[test]
    fn exec_class_exempt_from_thread_rule() {
        let exec = FileClass { exec: true, ..LIB };
        let src = "pub fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(run(src, exec).is_empty());
        assert_eq!(run(src, LIB).len(), 1, "`thread::` path hit");
    }

    #[test]
    fn thread_rule_suppressible_inline() {
        let src = "// steelcheck: allow(thread-outside-exec): id counter only\n\
                   use std::sync::atomic::AtomicU64;";
        assert!(run(src, LIB).is_empty());
    }

    #[test]
    fn sockets_flagged_outside_serve() {
        for src in [
            "use std::net::TcpListener;",
            "pub fn f() { let _ = TcpStream::connect(\"127.0.0.1:80\"); }",
            "use std::net::UdpSocket;",
            "pub fn f() { let _ = std::net::SocketAddr::from(([0, 0, 0, 0], 0)); }",
        ] {
            let hits = run(src, LIB);
            assert!(
                hits.iter().all(|h| h.rule == "network-outside-serve") && !hits.is_empty(),
                "{src}: {hits:?}"
            );
        }
    }

    #[test]
    fn net_as_plain_ident_not_flagged() {
        // A variable or field named `net` without a path separator is
        // fine — only `net::`/`::net` path segments and socket types hit.
        for src in [
            "pub fn f(net: u32) -> u32 { net + 1 }",
            "pub struct Topo { net: u32 }",
        ] {
            let hits = run(src, LIB);
            assert!(hits.is_empty(), "{src}: {hits:?}");
        }
    }

    #[test]
    fn exec_class_exempt_from_network_rule() {
        let exec = FileClass { exec: true, ..LIB };
        let src = "pub fn f() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }";
        assert!(run(src, exec).is_empty());
        assert_eq!(run(src, LIB).len(), 2, "`net::` path + TcpListener hit");
    }

    #[test]
    fn network_rule_suppressible_inline() {
        let src = "// steelcheck: allow(network-outside-serve): doc example, never run\n\
                   use std::net::TcpStream;";
        assert!(run(src, LIB).is_empty());
    }
}
