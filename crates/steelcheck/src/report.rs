//! Diagnostics and report rendering.
//!
//! Findings render in two formats: a human `file:line: rule: message`
//! stream (stable, sorted, grep-able) and a machine-readable JSON
//! report for CI. The JSON writer is hand-rolled — the only consumer
//! is the hermeticity gate, and pulling a serializer in would violate
//! the very contract this tool enforces. Output ordering is fully
//! deterministic: findings sort by (file, line, rule, message).

use std::fmt;

/// One diagnostic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated on all platforms.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (see [`crate::rules::ALL_RULES`], plus `bad-directive`).
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(file: &str, line: u32, rule: &str, message: &str) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A completed run: findings plus scan statistics.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted.
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub rust_files: usize,
    /// Number of manifests (Cargo.toml + Cargo.lock) scanned.
    pub manifests: usize,
}

impl Report {
    /// Sort findings into the canonical deterministic order.
    pub fn finalize(&mut self) {
        self.findings.sort();
        self.findings.dedup();
    }

    /// Render the JSON report. Schema:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "rust_files": 90,
    ///   "manifests": 12,
    ///   "findings": [
    ///     {"file": "crates/x/src/a.rs", "line": 3,
    ///      "rule": "wall-clock", "message": "..."}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"rust_files\": {},\n", self.rust_files));
        s.push_str(&format!("  \"manifests\": {},\n", self.manifests));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            s.push_str(&format!("\"message\": {}", json_str(&f.message)));
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Escape a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report {
            findings: vec![
                Finding::new("b.rs", 2, "wall-clock", "msg \"quoted\""),
                Finding::new("a.rs", 9, "wall-clock", "tab\there"),
            ],
            rust_files: 2,
            manifests: 1,
        };
        r.finalize();
        assert_eq!(r.findings[0].file, "a.rs");
        let j = r.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"rust_files\": 2"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
    }

    #[test]
    fn display_is_grep_able() {
        let f = Finding::new("crates/x/src/a.rs", 7, "unwrap-in-lib", "no");
        assert_eq!(f.to_string(), "crates/x/src/a.rs:7: unwrap-in-lib: no");
    }
}
