//! Diagnostics and report rendering.
//!
//! Findings render in three formats: a human `file:line: rule: message`
//! stream (stable, sorted, grep-able), a machine-readable JSON report
//! for CI, and a minimal SARIF 2.1.0 log for standard code-scanning
//! UIs. Both machine writers are hand-rolled — the only consumers are
//! CI gates, and pulling a serializer in would violate the very
//! contract this tool enforces. Output ordering is fully
//! deterministic: findings sort by (file, line, rule, message, flow),
//! and SARIF rule metadata follows the rule-table order.
//!
//! Interprocedural findings carry their call path as structured
//! [`FlowStep`]s rather than flattened into the message text: SARIF
//! renders them as `codeFlows`/`threadFlows` (one location per hop),
//! JSON as a `flow` array, and the human stream appends a
//! `(via a -> b -> c)` suffix so grep keeps working.

use crate::rules;
use std::fmt;

/// One hop of an interprocedural call path attached to a finding.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct FlowStep {
    /// Workspace-relative path of the function this hop enters.
    pub file: String,
    /// 1-based line of the function's `fn` keyword.
    pub line: u32,
    /// Qualified function name (`netsim::Sim::run_until`).
    pub label: String,
}

impl FlowStep {
    /// Construct a step.
    pub fn new(file: &str, line: u32, label: &str) -> Self {
        FlowStep {
            file: file.to_string(),
            line,
            label: label.to_string(),
        }
    }
}

/// One diagnostic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated on all platforms.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (see [`crate::rules::ALL_RULES`], plus `bad-directive`).
    pub rule: String,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// Interprocedural call path, entry first; empty for local findings.
    pub flow: Vec<FlowStep>,
}

impl Finding {
    /// Construct a finding with no call path.
    pub fn new(file: &str, line: u32, rule: &str, message: &str) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.to_string(),
            flow: Vec::new(),
        }
    }

    /// Construct a finding carrying an interprocedural call path.
    pub fn with_flow(file: &str, line: u32, rule: &str, message: &str, flow: Vec<FlowStep>) -> Self {
        Finding {
            flow,
            ..Finding::new(file, line, rule, message)
        }
    }

    /// The call path rendered as `a -> b -> c` (empty for local findings).
    pub fn flow_text(&self) -> String {
        self.flow
            .iter()
            .map(|s| s.label.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// The human one-liner without the call-path suffix — the stable
    /// key baseline mode compares on (call paths churn when unrelated
    /// functions are renamed; the finding itself has not moved).
    pub fn display_base(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.flow.is_empty() {
            write!(f, " (via {})", self.flow_text())?;
        }
        Ok(())
    }
}

/// A completed run: findings plus scan statistics.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted.
    pub findings: Vec<Finding>,
    /// Number of Rust files scanned.
    pub rust_files: usize,
    /// Number of manifests (Cargo.toml + Cargo.lock) scanned.
    pub manifests: usize,
}

impl Report {
    /// Sort findings into the canonical deterministic order.
    pub fn finalize(&mut self) {
        self.findings.sort();
        self.findings.dedup();
    }

    /// Render the JSON report. Schema:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "rust_files": 90,
    ///   "manifests": 12,
    ///   "findings": [
    ///     {"file": "crates/x/src/a.rs", "line": 3,
    ///      "rule": "wall-clock", "message": "...",
    ///      "flow": [{"file": "...", "line": 1, "label": "crate::fn"}]}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"rust_files\": {},\n", self.rust_files));
        s.push_str(&format!("  \"manifests\": {},\n", self.manifests));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            s.push_str(&format!("\"message\": {}", json_str(&f.message)));
            if !f.flow.is_empty() {
                s.push_str(", \"flow\": [");
                for (j, step) in f.flow.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"file\": {}, \"line\": {}, \"label\": {}}}",
                        json_str(&step.file),
                        step.line,
                        json_str(&step.label)
                    ));
                }
                s.push(']');
            }
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Render a minimal SARIF 2.1.0 log: one run, one result per
    /// finding (level `error`), rule metadata from the rule table, and
    /// `codeFlows`/`threadFlows` for findings carrying a call path.
    /// Hand-serialized like [`Report::to_json`] and byte-deterministic.
    pub fn to_sarif(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        s.push_str("  \"version\": \"2.1.0\",\n");
        s.push_str("  \"runs\": [\n    {\n");
        s.push_str("      \"tool\": {\n        \"driver\": {\n");
        s.push_str("          \"name\": \"steelcheck\",\n");
        s.push_str("          \"rules\": [");
        for (i, r) in rules::RULES.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n            {");
            s.push_str(&format!("\"id\": {}, ", json_str(r.id)));
            s.push_str(&format!(
                "\"shortDescription\": {{\"text\": {}}}, ",
                json_str(r.summary)
            ));
            s.push_str(&format!(
                "\"fullDescription\": {{\"text\": {}}}",
                json_str(r.rationale)
            ));
            s.push('}');
        }
        s.push_str("\n          ]\n        }\n      },\n");
        s.push_str("      \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n        {");
            s.push_str(&format!("\"ruleId\": {}, ", json_str(&f.rule)));
            s.push_str("\"level\": \"error\", ");
            s.push_str(&format!(
                "\"message\": {{\"text\": {}}}, ",
                json_str(&f.message)
            ));
            s.push_str(&format!(
                "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]",
                json_str(&f.file),
                f.line
            ));
            if !f.flow.is_empty() {
                s.push_str(", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
                for (j, step) in f.flow.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"location\": {{\"physicalLocation\": {{\"artifactLocation\": \
                         {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}, \
                         \"message\": {{\"text\": {}}}}}}}",
                        json_str(&step.file),
                        step.line,
                        json_str(&step.label)
                    ));
                }
                s.push_str("]}]}]");
            }
            s.push('}');
        }
        if !self.findings.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }\n  ]\n}\n");
        s
    }

    /// A fixed-order per-rule finding-count table (every rule in the
    /// table, zero counts included) for the human gate output.
    pub fn rule_summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<22} findings\n", "rule"));
        for r in rules::RULES {
            let n = self.findings.iter().filter(|f| f.rule == r.id).count();
            s.push_str(&format!("{:<22} {}\n", r.id, n));
        }
        s.push_str(&format!("{:<22} {}\n", "total", self.findings.len()));
        s
    }
}

/// Escape a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut r = Report {
            findings: vec![
                Finding::new("b.rs", 2, "wall-clock", "msg \"quoted\""),
                Finding::new("a.rs", 9, "wall-clock", "tab\there"),
            ],
            rust_files: 2,
            manifests: 1,
        };
        r.finalize();
        assert_eq!(r.findings[0].file, "a.rs");
        let j = r.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("tab\\there"));
        assert!(j.contains("\"rust_files\": 2"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
    }

    #[test]
    fn display_is_grep_able() {
        let f = Finding::new("crates/x/src/a.rs", 7, "unwrap-in-lib", "no");
        assert_eq!(f.to_string(), "crates/x/src/a.rs:7: unwrap-in-lib: no");
    }

    #[test]
    fn sarif_has_all_rules_and_results() {
        let mut r = Report {
            findings: vec![Finding::new(
                "crates/x/src/a.rs",
                3,
                "wallclock-reachable",
                "msg with \"quotes\"",
            )],
            rust_files: 1,
            manifests: 0,
        };
        r.finalize();
        let s = r.to_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        for rule in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", rule.id)), "{}", rule.id);
        }
        assert!(s.contains("\"ruleId\": \"wallclock-reachable\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\\\"quotes\\\""));
    }

    #[test]
    fn empty_sarif_is_stable_shape() {
        let a = Report::default().to_sarif();
        let b = Report::default().to_sarif();
        assert_eq!(a, b);
        assert!(a.contains("\"results\": []"));
    }

    #[test]
    fn rule_summary_lists_every_rule_with_counts() {
        let mut r = Report::default();
        r.findings.push(Finding::new("a.rs", 1, "wall-clock", "m"));
        r.findings.push(Finding::new("a.rs", 2, "wall-clock", "m2"));
        let s = r.rule_summary();
        assert!(s.lines().any(|l| l.starts_with("wall-clock") && l.ends_with('2')));
        assert!(s.lines().any(|l| l.starts_with("rng-entropy") && l.ends_with('0')));
        assert!(s.lines().any(|l| l.starts_with("total") && l.ends_with('2')));
        assert_eq!(s.lines().count(), crate::rules::RULES.len() + 2);
    }
}
