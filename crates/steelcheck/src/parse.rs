//! A zero-dependency item/signature parser on top of [`crate::lexer`].
//!
//! This is the middle layer of the three-layer analysis (lexical →
//! call graph → reachability): it recovers just enough structure from
//! the token stream for interprocedural reasoning — modules (including
//! `#[cfg(test)]` blocks), `impl`/`trait` blocks with their self type,
//! `fn` items with body spans, and every call expression, method call,
//! and macro invocation inside each body — without attempting to be a
//! real Rust parser. Where Rust's grammar is ambiguous at the token
//! level the parser stays deliberately *over-approximate*: a tuple
//! struct pattern `Left(v)` is recorded as a call named `Left` (it
//! resolves to nothing and is harmless), and an unparseable header
//! degrades to a plain block rather than an error, so macro-heavy or
//! `impl Trait`-heavy sources never abort the pass.
//!
//! Guarantees the downstream layers rely on:
//!
//! - Every `fn` with a body becomes exactly one [`FnItem`] whose
//!   `body` token span covers the braces, in source order.
//! - `in_test` is true for items under `#[cfg(test)]` / `#[test]`
//!   (over-approximate: any attribute containing the ident `test`).
//! - Calls carry the token index of their name and the token span of
//!   their argument list, so taint rules can inspect seed expressions.

use crate::lexer::{Lexed, TokKind, Token};

/// Reserved words that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "in", "return", "break", "continue", "let",
    "mut", "ref", "move", "as", "use", "pub", "crate", "self", "Self", "super", "where", "unsafe",
    "extern", "dyn", "impl", "fn", "mod", "struct", "enum", "union", "trait", "type", "const",
    "static", "async", "await", "box", "true", "false", "yield",
];

/// How a call site was written.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallKind {
    /// A path or bare call: `helper(..)`, `a::b::f(..)`.
    Free,
    /// A method call: `x.f(..)`.
    Method,
    /// A macro invocation: `panic!(..)`, `vec![..]`.
    Macro,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Shape of the call site.
    pub kind: CallKind,
    /// Path segments. For [`CallKind::Free`] the full written path
    /// including the final name (`["SimRng", "seed_from_u64"]`); for
    /// `Method`/`Macro` a single element, the name.
    pub path: Vec<String>,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name ident in the file's token stream.
    pub name_idx: usize,
    /// Token index range `[lo, hi)` of the argument list, excluding the
    /// delimiters. Empty (`lo == hi`) for argument-less calls.
    pub args: (usize, usize),
}

impl Call {
    /// The called name (last path segment).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// One `fn` item with a body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type when defined inside an `impl`/`trait` block.
    pub self_ty: Option<String>,
    /// Enclosing in-file module path (innermost last).
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
    /// Token index range `[lo, hi)` of the body including both braces.
    pub body: (usize, usize),
    /// Every call site lexically inside the body (nested closures
    /// included; nested `fn` items get their own [`FnItem`]).
    pub calls: Vec<Call>,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// All function items with bodies, in source order.
    pub fns: Vec<FnItem>,
}

enum Scope {
    /// `mod name { .. }`. `test` notes whether this mod adds a test region.
    Mod { test: bool },
    /// `impl .. { .. }` or `trait Name { .. }`; restores the previous
    /// self type on pop.
    Impl { prev_ty: Option<String>, test: bool },
    /// A `fn` body; `idx` indexes [`ParsedFile::fns`].
    Fn { idx: usize },
    /// Any other brace: blocks, match bodies, struct literals, ...
    Plain,
}

/// Parse the token stream of one file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    Parser {
        toks: &lexed.tokens,
        out: ParsedFile::default(),
        scopes: Vec::new(),
        mods: Vec::new(),
        cur_ty: None,
        fn_stack: Vec::new(),
        test_depth: 0,
        pending_test: false,
    }
    .run()
}

struct Parser<'a> {
    toks: &'a [Token],
    out: ParsedFile,
    scopes: Vec<Scope>,
    mods: Vec<String>,
    cur_ty: Option<String>,
    fn_stack: Vec<usize>,
    test_depth: usize,
    pending_test: bool,
}

impl<'a> Parser<'a> {
    fn run(mut self) -> ParsedFile {
        let n = self.toks.len();
        let mut i = 0;
        while i < n {
            let t = &self.toks[i];
            // Attributes: `#[ .. ]` / `#![ .. ]`. An attribute containing
            // the ident `test` marks the next item as test code.
            if t.is_punct("#") {
                let mut j = i + 1;
                if j < n && self.toks[j].is_punct("!") {
                    j += 1;
                }
                if j < n && self.toks[j].is_punct("[") {
                    let (end, has_test) = self.scan_attr(j);
                    if has_test {
                        self.pending_test = true;
                    }
                    i = end;
                    continue;
                }
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "mod" => {
                        if let Some(next) = self.advance_mod(i) {
                            i = next;
                            continue;
                        }
                    }
                    "impl" | "trait" => {
                        if let Some(next) = self.advance_impl(i) {
                            i = next;
                            continue;
                        }
                    }
                    "fn" => {
                        if let Some(next) = self.advance_fn(i) {
                            i = next;
                            continue;
                        }
                    }
                    _ => {
                        if !self.fn_stack.is_empty() && !KEYWORDS.contains(&t.text.as_str()) {
                            self.maybe_record_call(i);
                        }
                    }
                }
            }
            if t.is_punct(";") {
                self.pending_test = false;
            }
            if t.is_punct("{") {
                self.scopes.push(Scope::Plain);
            } else if t.is_punct("}") {
                self.pop_scope(i);
            }
            i += 1;
        }
        // Unterminated file (should not happen on rustc-valid input):
        // close any open fn bodies at EOF so spans stay well-formed.
        while let Some(idx) = self.fn_stack.pop() {
            self.out.fns[idx].body.1 = n;
        }
        self.out
    }

    /// Scan an attribute starting at the `[` at `open`; returns the
    /// index just past the matching `]` plus whether the ident `test`
    /// occurs inside (covers `#[test]` and `#[cfg(test)]`).
    fn scan_attr(&self, open: usize) -> (usize, bool) {
        let mut depth = 0usize;
        let mut has_test = false;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, has_test);
                }
            } else if t.is_ident("test") {
                has_test = true;
            }
            j += 1;
        }
        (j, has_test)
    }

    /// `mod name { ..` / `mod name;` — returns the index to resume at.
    fn advance_mod(&mut self, i: usize) -> Option<usize> {
        let name = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
        match self.toks.get(i + 2) {
            Some(t) if t.is_punct("{") => {
                let test = self.pending_test;
                self.pending_test = false;
                self.mods.push(name.text.clone());
                if test {
                    self.test_depth += 1;
                }
                self.scopes.push(Scope::Mod { test });
                Some(i + 3)
            }
            Some(t) if t.is_punct(";") => {
                self.pending_test = false;
                Some(i + 3)
            }
            _ => None,
        }
    }

    /// `impl<..> Type { ..`, `impl<..> Trait for Type { ..`,
    /// `trait Name .. { ..`. Returns the index just past the opening
    /// brace, or `None` to fall through to plain-block handling.
    fn advance_impl(&mut self, i: usize) -> Option<usize> {
        let is_trait = self.toks[i].is_ident("trait");
        let mut j = i + 1;
        let ty = if is_trait {
            let name = self.toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
            Some(name.text.clone())
        } else {
            j = self.skip_generics(j);
            let first = self.read_type_path(&mut j)?;
            if self.toks.get(j).is_some_and(|t| t.is_ident("for")) {
                j += 1;
                Some(self.read_type_path(&mut j)?)
            } else {
                Some(first)
            }
        };
        // Skip bounds / where clauses up to the block.
        while j < self.toks.len() && !self.toks[j].is_punct("{") {
            if self.toks[j].is_punct(";") {
                // `impl Trait for Type;` is not Rust, but degrade safely.
                self.pending_test = false;
                return Some(j + 1);
            }
            j += 1;
        }
        if j >= self.toks.len() {
            return None;
        }
        let test = self.pending_test;
        self.pending_test = false;
        if test {
            self.test_depth += 1;
        }
        self.scopes.push(Scope::Impl {
            prev_ty: self.cur_ty.take(),
            test,
        });
        self.cur_ty = ty;
        Some(j + 1)
    }

    /// Read a type path (`a::b::Name<..>`), advancing `*j` past it and
    /// any trailing generic arguments; returns the last ident segment.
    fn read_type_path(&self, j: &mut usize) -> Option<String> {
        let mut last = None;
        loop {
            // Leading `&`/`&mut`/`dyn` on exotic impl targets.
            while self
                .toks
                .get(*j)
                .is_some_and(|t| t.is_punct("&") || t.is_ident("dyn") || t.is_ident("mut"))
            {
                *j += 1;
            }
            let t = self.toks.get(*j)?;
            if t.kind != TokKind::Ident {
                return last;
            }
            last = Some(t.text.clone());
            *j += 1;
            *j = self.skip_generics(*j);
            if self.toks.get(*j).is_some_and(|t| t.is_punct("::")) {
                *j += 1;
            } else {
                return last;
            }
        }
    }

    /// If the token at `j` opens a generic-argument list, skip past the
    /// balanced `< .. >` (handling fused `<<`/`>>`); otherwise return `j`.
    fn skip_generics(&self, j: usize) -> usize {
        let Some(t) = self.toks.get(j) else {
            return j;
        };
        if !t.is_punct("<") {
            return j;
        }
        let mut depth: i64 = 0;
        let mut k = j;
        while k < self.toks.len() {
            match self.toks[k].text.as_str() {
                "<" if self.toks[k].kind == TokKind::Punct => depth += 1,
                "<<" if self.toks[k].kind == TokKind::Punct => depth += 2,
                ">" if self.toks[k].kind == TokKind::Punct => depth -= 1,
                ">>" if self.toks[k].kind == TokKind::Punct => depth -= 2,
                _ => {}
            }
            k += 1;
            if depth <= 0 {
                return k;
            }
        }
        k
    }

    /// `fn name .. { body }` / `fn name ..;` — records the item and
    /// returns the index to resume at (inside the body, so nested
    /// items and calls are scanned).
    fn advance_fn(&mut self, i: usize) -> Option<usize> {
        let name = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
        let in_test = self.pending_test || self.test_depth > 0;
        self.pending_test = false;
        // Scan the header to the body `{` or a `;` (trait/extern decl),
        // tracking paren depth so nothing inside `( .. )` terminates it.
        let mut j = i + 2;
        let mut paren = 0i64;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct("(") {
                paren += 1;
            } else if t.is_punct(")") {
                paren -= 1;
            } else if paren == 0 && t.is_punct(";") {
                return Some(j + 1); // bodyless declaration
            } else if paren == 0 && t.is_punct("{") {
                let idx = self.out.fns.len();
                self.out.fns.push(FnItem {
                    name: name.text.clone(),
                    self_ty: self.cur_ty.clone(),
                    modules: self.mods.clone(),
                    line: self.toks[i].line,
                    in_test,
                    body: (j, j), // end patched on scope pop
                    calls: Vec::new(),
                });
                self.fn_stack.push(idx);
                self.scopes.push(Scope::Fn { idx });
                return Some(j + 1);
            }
            j += 1;
        }
        Some(j)
    }

    fn pop_scope(&mut self, close_idx: usize) {
        match self.scopes.pop() {
            Some(Scope::Mod { test }) => {
                self.mods.pop();
                if test {
                    self.test_depth -= 1;
                }
            }
            Some(Scope::Impl { prev_ty, test }) => {
                self.cur_ty = prev_ty;
                if test {
                    self.test_depth -= 1;
                }
            }
            Some(Scope::Fn { idx }) => {
                self.out.fns[idx].body.1 = close_idx + 1;
                self.fn_stack.pop();
            }
            Some(Scope::Plain) | None => {}
        }
    }

    /// At a non-keyword ident inside a fn body: record a call if the
    /// token pattern matches `name(..)`, `.name(..)`, `path::name(..)`
    /// (with optional turbofish), or `name! ..`.
    fn maybe_record_call(&mut self, i: usize) {
        let toks = self.toks;
        let name = &toks[i];
        // Macro invocation: `name !` followed by a delimiter.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
        {
            let args = self.delim_span(i + 2);
            self.push_call(Call {
                kind: CallKind::Macro,
                path: vec![name.text.clone()],
                line: name.line,
                name_idx: i,
                args,
            });
            return;
        }
        // Optional turbofish between the name and the paren.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("::"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct("<"))
        {
            j = self.skip_generics(j + 1);
        }
        if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
            return;
        }
        let args = self.delim_span(j);
        if i > 0 && toks[i - 1].is_punct(".") {
            self.push_call(Call {
                kind: CallKind::Method,
                path: vec![name.text.clone()],
                line: name.line,
                name_idx: i,
                args,
            });
            return;
        }
        // Walk back over `seg::` qualifiers.
        let mut path = vec![name.text.clone()];
        let mut k = i;
        while k >= 2
            && toks[k - 1].is_punct("::")
            && toks[k - 2].kind == TokKind::Ident
            && !KEYWORDS.contains(&toks[k - 2].text.as_str())
        {
            path.push(toks[k - 2].text.clone());
            k -= 2;
        }
        // `crate::`/`self::`/`super::`/`Self::` prefixes are scope
        // qualifiers, not resolvable segments.
        while k >= 2
            && toks[k - 1].is_punct("::")
            && toks[k - 2].kind == TokKind::Ident
            && matches!(toks[k - 2].text.as_str(), "crate" | "self" | "super" | "Self")
        {
            k -= 2;
        }
        path.reverse();
        self.push_call(Call {
            kind: CallKind::Free,
            path,
            line: name.line,
            name_idx: i,
            args,
        });
    }

    /// Token span `[lo, hi)` of the contents of the delimiter group
    /// opening at `open` (exclusive of the delimiters themselves).
    fn delim_span(&self, open: usize) -> (usize, usize) {
        let (inc, dec) = match self.toks[open].text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => ("{", "}"),
        };
        let mut depth = 0i64;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.kind == TokKind::Punct && t.text == inc {
                depth += 1;
            } else if t.kind == TokKind::Punct && t.text == dec {
                depth -= 1;
                if depth == 0 {
                    return (open + 1, j);
                }
            }
            j += 1;
        }
        (open + 1, j)
    }

    fn push_call(&mut self, call: Call) {
        if let Some(&idx) = self.fn_stack.last() {
            self.out.fns[idx].calls.push(call);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}: {:?}", p.fns))
    }

    #[test]
    fn fns_mods_and_impls_are_recovered() {
        let src = r#"
            pub fn top() { helper(); }
            mod inner {
                impl Widget {
                    pub fn poke(&self) { self.count.fetch_add(1); }
                }
            }
            fn helper() {}
        "#;
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(fn_named(&p, "poke").self_ty.as_deref(), Some("Widget"));
        assert_eq!(fn_named(&p, "poke").modules, vec!["inner"]);
        assert!(fn_named(&p, "top").self_ty.is_none());
        let calls: Vec<_> = fn_named(&p, "top").calls.iter().map(|c| c.name()).collect();
        assert_eq!(calls, vec!["helper"]);
    }

    #[test]
    fn call_kinds_and_paths() {
        let src = r#"
            fn f() {
                bare();
                a::b::qualified(1, 2);
                x.method(3);
                panic!("boom");
                crate::util::scoped();
                SimRng::seed_from_u64(7);
            }
        "#;
        let p = parse_src(src);
        let calls = &fn_named(&p, "f").calls;
        let shapes: Vec<(CallKind, Vec<&str>)> = calls
            .iter()
            .map(|c| (c.kind, c.path.iter().map(String::as_str).collect()))
            .collect();
        assert_eq!(
            shapes,
            vec![
                (CallKind::Free, vec!["bare"]),
                (CallKind::Free, vec!["a", "b", "qualified"]),
                (CallKind::Method, vec!["method"]),
                (CallKind::Macro, vec!["panic"]),
                (CallKind::Free, vec!["util", "scoped"]),
                (CallKind::Free, vec!["SimRng", "seed_from_u64"]),
            ]
        );
    }

    #[test]
    fn test_regions_are_marked() {
        let src = r#"
            fn real() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() { helper(); }
            }
            #[test]
            fn top_level_case() {}
        "#;
        let p = parse_src(src);
        assert!(!fn_named(&p, "real").in_test);
        assert!(fn_named(&p, "helper").in_test);
        assert!(fn_named(&p, "case").in_test);
        assert!(fn_named(&p, "top_level_case").in_test);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = r#"
            impl fmt::Display for Finding {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, "x") }
            }
            impl<T: Clone> Wrapper<T> {
                fn get(&self) -> T { self.0.clone() }
            }
            trait Runner {
                fn prep(&self);
                fn go(&self) { self.prep(); }
            }
        "#;
        let p = parse_src(src);
        assert_eq!(fn_named(&p, "fmt").self_ty.as_deref(), Some("Finding"));
        assert_eq!(fn_named(&p, "get").self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(fn_named(&p, "go").self_ty.as_deref(), Some("Runner"));
        // `prep` has no body: not an item.
        assert!(p.fns.iter().all(|f| f.name != "prep"));
    }

    #[test]
    fn recovery_on_macro_heavy_and_impl_trait_sources() {
        // Declarative macros, `impl Trait` in argument and return
        // position, turbofish, closures: the parser must neither panic
        // nor lose the surrounding items.
        let src = r#"
            macro_rules! gen {
                ($name:ident) => { fn $name() {} };
            }
            fn takes(f: impl Fn(u32) -> u32) -> impl Iterator<Item = u32> {
                let v = Vec::<u32>::new();
                v.into_iter().map(move |x| f(x))
            }
            fn after() { takes(|x| x + 1).count(); }
        "#;
        let p = parse_src(src);
        assert!(p.fns.iter().any(|f| f.name == "takes"));
        let after = fn_named(&p, "after");
        assert!(after.calls.iter().any(|c| c.name() == "takes"));
        assert!(after
            .calls
            .iter()
            .any(|c| c.name() == "count" && c.kind == CallKind::Method));
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let src = "fn f() { parse::<u32>(s); x.collect::<Vec<_>>(); }";
        let p = parse_src(src);
        let names: Vec<_> = fn_named(&p, "f").calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["parse", "collect"]);
    }

    #[test]
    fn arg_spans_cover_the_argument_tokens() {
        let src = "fn f() { ctor(seed_of(now()), 3); }";
        let p = parse_src(src);
        let calls = &fn_named(&p, "f").calls;
        let ctor = calls.iter().find(|c| c.name() == "ctor").unwrap();
        let inner = calls.iter().find(|c| c.name() == "now").unwrap();
        assert!(
            ctor.args.0 <= inner.name_idx && inner.name_idx < ctor.args.1,
            "nested call sits inside the outer arg span"
        );
    }

    #[test]
    fn attributes_inside_bodies_do_not_create_calls() {
        let src = "fn f() { #[allow(dead_code)] let x = 1; real(); }";
        let p = parse_src(src);
        let names: Vec<_> = fn_named(&p, "f").calls.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_inner_item() {
        let src = "fn outer() { fn inner() { deep(); } inner(); }";
        let p = parse_src(src);
        let outer: Vec<_> = fn_named(&p, "outer").calls.iter().map(|c| c.name()).collect();
        let inner: Vec<_> = fn_named(&p, "inner").calls.iter().map(|c| c.name()).collect();
        assert_eq!(outer, vec!["inner"]);
        assert_eq!(inner, vec!["deep"]);
    }

    #[test]
    fn body_spans_nest_correctly() {
        let src = "fn a() { x(); } fn b() { y(); }";
        let p = parse_src(src);
        let a = fn_named(&p, "a");
        let b = fn_named(&p, "b");
        assert!(a.body.1 <= b.body.0, "spans must not overlap");
    }
}
