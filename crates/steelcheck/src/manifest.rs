//! R4 — manifest hygiene.
//!
//! The hermeticity contract (README, "Determinism & zero-dependency
//! policy") requires that every dependency in every `Cargo.toml` be a
//! workspace `path` dependency and that `Cargo.lock` reference no
//! external source. This module is the statically-checked version of
//! the grep half of `scripts/check_hermetic.sh`, with line-precise
//! diagnostics.
//!
//! The TOML "parser" here handles exactly what the policy needs:
//! `[section]` headers, `key = value` entries, and inline tables. It
//! does not evaluate strings or arrays — it only needs to know which
//! section an entry is in and whether the entry carries `path =` or
//! `workspace = true`.

use crate::report::Finding;

/// Scan one `Cargo.toml`. Any entry in a `*dependencies*` section that
/// is neither a `path` dependency nor a `workspace = true` alias is a
/// finding (the `[workspace.dependencies]` table the aliases point to
/// is audited by the same rule).
pub fn scan_cargo_toml(path: &str, src: &str, findings: &mut Vec<Finding>) {
    let mut in_dep_section = false;
    let mut table_header_line: Option<u32> = None; // `[dependencies.foo]` style
    let mut table_has_path = false;

    let flush_table = |line: Option<u32>, has_path: bool, findings: &mut Vec<Finding>| {
        if let Some(l) = line {
            if !has_path {
                findings.push(Finding::new(
                    path,
                    l,
                    "manifest-hygiene",
                    "dependency table has no `path =` entry; only workspace path \
                     dependencies are allowed",
                ));
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_table(table_header_line, table_has_path, findings);
            table_header_line = None;
            table_has_path = false;
            let name = line.trim_matches(|c| c == '[' || c == ']');
            let is_dep = name.split('.').any(|seg| {
                seg == "dependencies" || seg == "dev-dependencies" || seg == "build-dependencies"
            });
            // `[dependencies.foo]` (or deeper) opens a single-dep table.
            let opens_table = is_dep
                && name
                    .split('.')
                    .skip_while(|seg| !seg.ends_with("dependencies"))
                    .nth(1)
                    .is_some();
            in_dep_section = is_dep && !opens_table;
            if opens_table {
                table_header_line = Some(lineno);
            }
            // `[patch.*]` and `[replace]` redirect sources; forbid outright.
            if name.starts_with("patch") || name == "replace" {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "manifest-hygiene",
                    "`[patch]`/`[replace]` sections redirect dependency sources and \
                     are forbidden in a hermetic workspace",
                ));
            }
            continue;
        }
        if table_header_line.is_some() {
            if line.starts_with("path") {
                table_has_path = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // An entry line: `name = ...`. Allowed forms carry an inline
        // `path = "..."` / `workspace = true`, or use dotted keys
        // (`name.workspace = true`, `name.path = "..."`).
        if let Some((key, val)) = line.split_once('=') {
            let (key, val) = (key.trim(), val.trim());
            let ok = val.contains("path =")
                || val.contains("path=")
                || val.contains("workspace = true")
                || val.contains("workspace=true")
                || (key.ends_with(".workspace") && val == "true")
                || key.ends_with(".path");
            if !ok {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "manifest-hygiene",
                    "non-path dependency (registry, git, or bare version); the \
                     workspace allows only `path =` / `workspace = true` dependencies",
                ));
            }
        }
    }
    flush_table(table_header_line, table_has_path, findings);
}

/// Scan `Cargo.lock`: every `source = ...` line names an external
/// registry or git source and violates hermeticity.
pub fn scan_cargo_lock(path: &str, src: &str, findings: &mut Vec<Finding>) {
    for (idx, raw) in src.lines().enumerate() {
        if raw.trim_start().starts_with("source = ") {
            findings.push(Finding::new(
                path,
                idx as u32 + 1,
                "manifest-hygiene",
                "Cargo.lock entry references an external source; only workspace \
                 path crates may appear in the lockfile",
            ));
        }
    }
}

/// Strip a `#` comment from a TOML line, respecting basic strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toml_findings(src: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_cargo_toml("Cargo.toml", src, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let src = r#"
[package]
name = "x"

[dependencies]
a = { path = "../a" }
b.workspace = true
c = { workspace = true }
"#;
        let f = toml_findings(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn registry_dep_flagged() {
        let f = toml_findings("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn git_dep_flagged() {
        let f = toml_findings("[dependencies]\nx = { git = \"https://example.com/x\" }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dep_table_without_path_flagged() {
        let f = toml_findings("[dependencies.serde]\nversion = \"1.0\"\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn dep_table_with_path_passes() {
        let f = toml_findings("[dependencies.a]\npath = \"../a\"\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn patch_section_flagged() {
        let f = toml_findings("[patch.crates-io]\nserde = { path = \"vendored\" }\n");
        assert!(!f.is_empty());
    }

    #[test]
    fn comments_do_not_confuse() {
        let f = toml_findings("[dependencies]\n# serde = \"1.0\"\na = { path = \"../a\" } # ok\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_source_lines_flagged() {
        let mut out = Vec::new();
        scan_cargo_lock(
            "Cargo.lock",
            "[[package]]\nname = \"serde\"\nsource = \"registry+https://github.com\"\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }
}
