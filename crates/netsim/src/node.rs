//! Devices: the active elements of a simulation.
//!
//! Anything that terminates a link — a host, a switch, a PLC, a NIC with
//! an XDP program — implements [`Device`]. The engine drives devices
//! through three callbacks (`on_start`, `on_frame`, `on_timer`) and
//! devices act on the world exclusively through the [`Ctx`] handed to
//! each callback, which keeps borrow-checking trivial and device logic
//! deterministic and testable in isolation.

use crate::bytes::{Bytes, BytesPool};
use crate::frame::EthFrame;
use crate::rng::SimRng;
use crate::time::{NanoDur, Nanos};
use std::any::Any;

/// Index of a node within a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a port on a node. Ports are created implicitly by wiring.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// Deferred side effects a device requests during a callback.
#[derive(Debug)]
pub enum Action {
    /// Transmit a frame out of a local port.
    Send {
        /// Egress port.
        port: PortId,
        /// Frame to serialize onto the wire.
        frame: EthFrame,
    },
    /// Fire `on_timer(token)` at absolute time `at`.
    TimerAt {
        /// Absolute expiry instant.
        at: Nanos,
        /// Device-defined discriminator.
        token: u64,
    },
}

/// Per-callback handle through which a device reads the clock, draws
/// randomness, transmits frames, and arms timers.
#[derive(Debug)]
pub struct Ctx<'a> {
    now: Nanos,
    node: NodeId,
    rng: &'a mut SimRng,
    port_rates: &'a [Option<u64>],
    actions: &'a mut Vec<Action>,
    pool: &'a mut BytesPool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        now: Nanos,
        node: NodeId,
        rng: &'a mut SimRng,
        port_rates: &'a [Option<u64>],
        actions: &'a mut Vec<Action>,
        pool: &'a mut BytesPool,
    ) -> Self {
        Ctx {
            now,
            node,
            rng,
            port_rates,
            actions,
            pool,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// This device's node id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This device's private deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Line rate of the link attached to `port` in bits/s, or `None`
    /// when the port is not wired. Lets a device (e.g. a switch egress
    /// scheduler) compute serialization times without reaching into the
    /// engine.
    pub fn link_rate(&self, port: PortId) -> Option<u64> {
        self.port_rates.get(port.0).copied().flatten()
    }

    /// Number of ports wired on this node so far.
    pub fn port_count(&self) -> usize {
        self.port_rates.len()
    }

    /// A zero-filled payload buffer from the engine's free-list pool.
    ///
    /// The hot path for synthetic traffic: recycles a parked buffer
    /// when every previous user has dropped theirs, so steady-state
    /// sources stop hitting the allocator per frame.
    pub fn payload_zeroed(&mut self, len: usize) -> Bytes {
        self.pool.take_zeroed(len)
    }

    /// A pooled payload buffer with contents written by `init`, which
    /// always receives the full `len`-byte slice.
    pub fn payload_with(&mut self, len: usize, init: impl FnOnce(&mut [u8])) -> Bytes {
        self.pool.take_with(len, init)
    }

    /// Queue a frame for transmission out of `port`. Serialization and
    /// propagation delay are applied by the engine; if the transmitter
    /// is already busy the frame queues behind in-flight frames (FIFO
    /// per port at the link layer).
    pub fn send(&mut self, port: PortId, frame: EthFrame) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Arm a one-shot timer `delay` from now.
    pub fn timer_in(&mut self, delay: NanoDur, token: u64) {
        self.actions.push(Action::TimerAt {
            at: self.now + delay,
            token,
        });
    }

    /// Arm a one-shot timer at an absolute instant (must not be in the
    /// past; the engine clamps to `now`).
    pub fn timer_at(&mut self, at: Nanos, token: u64) {
        self.actions.push(Action::TimerAt {
            at: at.max(self.now),
            token,
        });
    }
}

/// Object-safe downcasting support, blanket-implemented for every
/// device so test and experiment code can read device state back out of
/// a finished simulation.
pub trait AsAny {
    /// Upcast to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An active network element.
pub trait Device: AsAny + 'static {
    /// Human-readable name for traces and error messages.
    fn name(&self) -> &str;

    /// Called once at simulation start (time 0), before any frame moves.
    /// Typical use: arm the first cyclic timer.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A frame has fully arrived on `port`.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EthFrame);

    /// A timer armed via [`Ctx::timer_in`]/[`Ctx::timer_at`] expired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// A device that drops everything — useful as a traffic sink or as a
/// placeholder endpoint in unit tests.
#[derive(Debug, Default)]
pub struct NullDevice {
    frames_seen: u64,
}

impl NullDevice {
    /// New sink.
    pub fn new() -> Self {
        NullDevice::default()
    }

    /// Number of frames absorbed.
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }
}

impl Device for NullDevice {
    fn name(&self) -> &str {
        "null"
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {
        self.frames_seen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ethertype, MacAddr};
    use crate::bytes::Bytes;

    #[test]
    fn ctx_buffers_actions() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut actions = Vec::new();
        let mut pool = BytesPool::new();
        let rates = vec![Some(1_000_000_000u64), None];
        let mut ctx = Ctx::new(
            Nanos(100),
            NodeId(0),
            &mut rng,
            &rates,
            &mut actions,
            &mut pool,
        );
        assert_eq!(ctx.now(), Nanos(100));
        assert_eq!(ctx.link_rate(PortId(0)), Some(1_000_000_000));
        assert_eq!(ctx.link_rate(PortId(1)), None);
        assert_eq!(ctx.link_rate(PortId(9)), None);
        ctx.send(
            PortId(0),
            EthFrame::new(
                MacAddr::local(1),
                MacAddr::local(2),
                ethertype::SIM_TEST,
                Bytes::new(),
            ),
        );
        ctx.timer_in(NanoDur(50), 7);
        ctx.timer_at(Nanos(10), 8); // in the past -> clamped to now
        assert_eq!(actions.len(), 3);
        match &actions[1] {
            Action::TimerAt { at, token } => {
                assert_eq!(*at, Nanos(150));
                assert_eq!(*token, 7);
            }
            _ => panic!("expected timer"),
        }
        match &actions[2] {
            Action::TimerAt { at, .. } => assert_eq!(*at, Nanos(100)),
            _ => panic!("expected timer"),
        }
    }

    #[test]
    fn null_device_counts() {
        let mut d = NullDevice::new();
        let mut rng = SimRng::seed_from_u64(1);
        let mut actions = Vec::new();
        let mut pool = BytesPool::new();
        let rates = vec![];
        let mut ctx = Ctx::new(
            Nanos(0),
            NodeId(0),
            &mut rng,
            &rates,
            &mut actions,
            &mut pool,
        );
        let f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::SIM_TEST,
            Bytes::new(),
        );
        d.on_frame(&mut ctx, PortId(0), f);
        assert_eq!(d.frames_seen(), 1);
    }
}
