//! Simulated time.
//!
//! The whole simulator runs on a single virtual clock with nanosecond
//! resolution. [`Nanos`] is an absolute instant, [`NanoDur`] a duration.
//! Both are thin wrappers over `u64`, so a simulation can span ~584 years
//! before wrapping — far beyond any experiment in this workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NanoDur(pub u64);

/// One microsecond.
pub const US: NanoDur = NanoDur(1_000);
/// One millisecond.
pub const MS: NanoDur = NanoDur(1_000_000);
/// One second.
pub const SEC: NanoDur = NanoDur(1_000_000_000);

impl Nanos {
    /// The epoch of the simulation, t = 0.
    pub const ZERO: Nanos = Nanos(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, with fractional part.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds, with fractional part.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds, with fractional part.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration since an earlier instant; saturates at zero if `earlier`
    /// is actually later (clock-skew-tolerant).
    pub fn saturating_since(self, earlier: Nanos) -> NanoDur {
        NanoDur(self.0.saturating_sub(earlier.0))
    }

    /// Quantize down to a multiple of `step`, modelling a timestamping
    /// device with finite resolution (e.g. an 8 ns hardware tap clock).
    pub fn quantize(self, step: NanoDur) -> Nanos {
        if step.0 <= 1 {
            return self;
        }
        Nanos(self.0 - self.0 % step.0)
    }
}

impl NanoDur {
    /// The zero-length duration.
    pub const ZERO: NanoDur = NanoDur(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        NanoDur(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        NanoDur(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        NanoDur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        NanoDur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest ns.
    ///
    /// Panics on NaN or negative input — both are logic errors in
    /// scenario code, not values to silently coerce to zero. Values
    /// beyond `u64::MAX` nanoseconds (~584 years, including `+inf`)
    /// saturate to the maximum representable duration.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(!s.is_nan(), "duration seconds must not be NaN");
        assert!(s >= 0.0, "duration seconds must be non-negative, got {s}");
        // `as u64` saturates at the type bounds per Rust float-cast
        // semantics, so overflow clamps rather than wrapping.
        NanoDur((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, with fractional part.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds, with fractional part.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds, with fractional part.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Serialization time of `bits` at `bits_per_sec` line rate.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "line rate must be positive");
        // Round up: a partial nanosecond still occupies the wire.
        NanoDur((bits * 1_000_000_000).div_ceil(bits_per_sec))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: NanoDur) -> NanoDur {
        NanoDur(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest ns.
    ///
    /// Panics on NaN or negative scale; results beyond `u64::MAX`
    /// nanoseconds saturate to the maximum representable duration.
    pub fn mul_f64(self, k: f64) -> NanoDur {
        assert!(!k.is_nan(), "duration scale must not be NaN");
        assert!(k >= 0.0, "duration scale must be non-negative, got {k}");
        NanoDur((self.0 as f64 * k).round() as u64)
    }
}

impl Add<NanoDur> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: NanoDur) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign<NanoDur> for Nanos {
    fn add_assign(&mut self, rhs: NanoDur) {
        self.0 += rhs.0;
    }
}

impl Sub<NanoDur> for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: NanoDur) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Sub<Nanos> for Nanos {
    type Output = NanoDur;
    fn sub(self, rhs: Nanos) -> NanoDur {
        NanoDur(self.0 - rhs.0)
    }
}

impl Add for NanoDur {
    type Output = NanoDur;
    fn add(self, rhs: NanoDur) -> NanoDur {
        NanoDur(self.0 + rhs.0)
    }
}

impl AddAssign for NanoDur {
    fn add_assign(&mut self, rhs: NanoDur) {
        self.0 += rhs.0;
    }
}

impl Sub for NanoDur {
    type Output = NanoDur;
    fn sub(self, rhs: NanoDur) -> NanoDur {
        NanoDur(self.0 - rhs.0)
    }
}

impl SubAssign for NanoDur {
    fn sub_assign(&mut self, rhs: NanoDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for NanoDur {
    type Output = NanoDur;
    fn mul(self, rhs: u64) -> NanoDur {
        NanoDur(self.0 * rhs)
    }
}

impl Div<u64> for NanoDur {
    type Output = NanoDur;
    fn div(self, rhs: u64) -> NanoDur {
        NanoDur(self.0 / rhs)
    }
}

impl Rem<NanoDur> for Nanos {
    type Output = NanoDur;
    fn rem(self, rhs: NanoDur) -> NanoDur {
        NanoDur(self.0 % rhs.0)
    }
}

impl Rem for NanoDur {
    type Output = NanoDur;
    fn rem(self, rhs: NanoDur) -> NanoDur {
        NanoDur(self.0 % rhs.0)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for NanoDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for NanoDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1000));
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1000));
        assert_eq!(NanoDur::from_secs(2), NanoDur(2_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Nanos::from_micros(5);
        let d = NanoDur::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn quantize_floors_to_step() {
        let t = Nanos(1007);
        assert_eq!(t.quantize(NanoDur(8)), Nanos(1000));
        assert_eq!(Nanos(1000).quantize(NanoDur(8)), Nanos(1000));
        assert_eq!(t.quantize(NanoDur(1)), t);
        assert_eq!(t.quantize(NanoDur(0)), t);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 64 bytes at 1 Gbps = 512 ns exactly.
        assert_eq!(NanoDur::for_bits(512, 1_000_000_000), NanoDur(512));
        // 1 bit at 1 Gbps = 1 ns exactly; at 3 Gbps it must round up to 1 ns.
        assert_eq!(NanoDur::for_bits(1, 3_000_000_000), NanoDur(1));
    }

    #[test]
    fn saturating_since_handles_skew() {
        let a = Nanos(100);
        let b = Nanos(200);
        assert_eq!(b.saturating_since(a), NanoDur(100));
        assert_eq!(a.saturating_since(b), NanoDur(0));
    }

    #[test]
    fn unit_conversions() {
        assert!((Nanos::from_millis(2).as_millis_f64() - 2.0).abs() < 1e-12);
        assert!((NanoDur::from_micros(7).as_micros_f64() - 7.0).abs() < 1e-12);
        assert_eq!(NanoDur::from_secs_f64(0.5), NanoDur(500_000_000));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", NanoDur(42)), "42ns");
        assert_eq!(format!("{}", NanoDur(1_500)), "1.500us");
        assert_eq!(format!("{}", NanoDur(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", NanoDur(3_000_000_000)), "3.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(NanoDur(100).mul_f64(1.5), NanoDur(150));
        assert_eq!(NanoDur(3).mul_f64(0.5), NanoDur(2)); // 1.5 rounds to 2
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn from_secs_f64_rejects_nan() {
        let _ = NanoDur::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = NanoDur::from_secs_f64(-0.001);
    }

    #[test]
    fn from_secs_f64_saturates_beyond_u64() {
        // u64::MAX ns is ~584 years; 1e12 seconds is far past it.
        assert_eq!(NanoDur::from_secs_f64(1e12), NanoDur(u64::MAX));
        assert_eq!(NanoDur::from_secs_f64(f64::INFINITY), NanoDur(u64::MAX));
        // Negative zero is a valid zero, not a negative duration.
        assert_eq!(NanoDur::from_secs_f64(-0.0), NanoDur(0));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn mul_f64_rejects_nan() {
        let _ = NanoDur(100).mul_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = NanoDur(100).mul_f64(-1.0);
    }

    #[test]
    fn mul_f64_saturates_beyond_u64() {
        assert_eq!(NanoDur(u64::MAX).mul_f64(2.0), NanoDur(u64::MAX));
        assert_eq!(NanoDur(1).mul_f64(f64::INFINITY), NanoDur(u64::MAX));
    }
}
