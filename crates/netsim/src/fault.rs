//! Link fault injection.
//!
//! Following the smoltcp example-suite idiom, every link direction can
//! be configured to drop, corrupt, duplicate, delay-reorder, or
//! rate-limit frames. Industrial protocols live or die by their
//! behaviour under exactly these faults (a PROFINET watchdog expiring
//! after a burst of drops halts a production cell), so fault injection
//! is a first-class feature rather than a test-only afterthought.

use crate::rng::SimRng;
use crate::time::{NanoDur, Nanos};

/// What the injector decided to do with one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver unmodified, on time.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver with one payload byte flipped.
    Corrupt,
    /// Deliver late by the given extra delay (causes reordering).
    Delay(NanoDur),
    /// Deliver the original and an identical duplicate.
    Duplicate,
}

/// Token bucket used for rate limiting, refilled on a fixed interval
/// (matching the smoltcp `--shaping-interval` model).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u32,
    tokens: u32,
    refill_every: NanoDur,
    last_refill: Nanos,
}

impl TokenBucket {
    /// Bucket holding `capacity` frame tokens, fully refilled every
    /// `refill_every`.
    pub fn new(capacity: u32, refill_every: NanoDur) -> Self {
        assert!(capacity > 0 && refill_every.as_nanos() > 0);
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_every,
            last_refill: Nanos::ZERO,
        }
    }

    /// Try to take one token at time `now`; `false` means over-rate.
    pub fn admit(&mut self, now: Nanos) -> bool {
        let elapsed = now.saturating_since(self.last_refill);
        if elapsed >= self.refill_every {
            let periods = elapsed.as_nanos() / self.refill_every.as_nanos();
            self.tokens = self.capacity;
            self.last_refill += self.refill_every * periods;
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// Per-direction fault model for a link.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability one payload byte is flipped.
    pub corrupt_prob: f64,
    /// Probability a frame is duplicated.
    pub duplicate_prob: f64,
    /// Probability a frame is delayed by up to `reorder_max_delay`.
    pub reorder_prob: f64,
    /// Maximum extra delay applied to reordered frames.
    pub reorder_max_delay: NanoDur,
    /// Frames larger than this (wire length, bytes) are dropped.
    pub size_limit: Option<usize>,
    /// Token-bucket rate limit: (capacity, refill interval).
    pub rate_limit: Option<(u32, NanoDur)>,
}

impl FaultSpec {
    /// A perfectly clean link.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// A lossy link dropping with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultSpec {
            drop_prob: p,
            ..FaultSpec::default()
        }
    }

    /// True when no fault can ever trigger (lets the engine skip the
    /// injector entirely on clean links).
    pub fn is_none(&self) -> bool {
        self.drop_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.size_limit.is_none()
            && self.rate_limit.is_none()
    }
}

/// Stateful injector instantiated per link direction.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    bucket: Option<TokenBucket>,
    dropped: u64,
    corrupted: u64,
    duplicated: u64,
    reordered: u64,
    rate_limited: u64,
}

impl FaultInjector {
    /// Instantiate an injector for one link direction.
    pub fn new(spec: FaultSpec) -> Self {
        let bucket = spec
            .rate_limit
            .map(|(cap, every)| TokenBucket::new(cap, every));
        FaultInjector {
            spec,
            bucket,
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
            reordered: 0,
            rate_limited: 0,
        }
    }

    /// True when this injector can never alter traffic.
    pub fn is_transparent(&self) -> bool {
        self.spec.is_none()
    }

    /// Decide the fate of one frame of `wire_len` bytes at time `now`.
    pub fn judge(&mut self, now: Nanos, wire_len: usize, rng: &mut SimRng) -> FaultVerdict {
        if let Some(limit) = self.spec.size_limit {
            if wire_len > limit {
                self.dropped += 1;
                return FaultVerdict::Drop;
            }
        }
        if let Some(bucket) = &mut self.bucket {
            if !bucket.admit(now) {
                self.rate_limited += 1;
                return FaultVerdict::Drop;
            }
        }
        if rng.chance(self.spec.drop_prob) {
            self.dropped += 1;
            return FaultVerdict::Drop;
        }
        if rng.chance(self.spec.corrupt_prob) {
            self.corrupted += 1;
            return FaultVerdict::Corrupt;
        }
        if rng.chance(self.spec.duplicate_prob) {
            self.duplicated += 1;
            return FaultVerdict::Duplicate;
        }
        if rng.chance(self.spec.reorder_prob) && self.spec.reorder_max_delay.as_nanos() > 0 {
            self.reordered += 1;
            let extra = NanoDur(rng.below(self.spec.reorder_max_delay.as_nanos()) + 1);
            return FaultVerdict::Delay(extra);
        }
        FaultVerdict::Deliver
    }

    /// Frames dropped by probability or size limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
    /// Frames corrupted.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
    /// Frames duplicated.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }
    /// Frames delayed for reordering.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
    /// Frames dropped by the rate limiter.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_injector_is_transparent() {
        let mut inj = FaultInjector::new(FaultSpec::none());
        assert!(inj.is_transparent());
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(inj.judge(Nanos(0), 64, &mut rng), FaultVerdict::Deliver);
        }
    }

    #[test]
    fn drop_probability_roughly_respected() {
        let mut inj = FaultInjector::new(FaultSpec::lossy(0.3));
        let mut rng = SimRng::seed_from_u64(2);
        let n = 10_000;
        let mut drops = 0;
        for _ in 0..n {
            if inj.judge(Nanos(0), 64, &mut rng) == FaultVerdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert_eq!(inj.dropped(), drops);
    }

    #[test]
    fn size_limit_drops_big_frames() {
        let mut inj = FaultInjector::new(FaultSpec {
            size_limit: Some(128),
            ..FaultSpec::default()
        });
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(inj.judge(Nanos(0), 64, &mut rng), FaultVerdict::Deliver);
        assert_eq!(inj.judge(Nanos(0), 129, &mut rng), FaultVerdict::Drop);
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let mut tb = TokenBucket::new(2, NanoDur::from_millis(50));
        assert!(tb.admit(Nanos(0)));
        assert!(tb.admit(Nanos(1)));
        assert!(!tb.admit(Nanos(2)));
        // After the refill interval the bucket is full again.
        assert!(tb.admit(Nanos::from_millis(50)));
        assert!(tb.admit(Nanos::from_millis(51)));
        assert!(!tb.admit(Nanos::from_millis(52)));
    }

    #[test]
    fn reorder_delay_bounded() {
        let spec = FaultSpec {
            reorder_prob: 1.0,
            reorder_max_delay: NanoDur(100),
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            match inj.judge(Nanos(0), 64, &mut rng) {
                FaultVerdict::Delay(d) => {
                    assert!(d.as_nanos() >= 1 && d.as_nanos() <= 100)
                }
                v => panic!("expected delay, got {v:?}"),
            }
        }
    }

    #[test]
    fn verdict_priority_drop_before_corrupt() {
        // With drop_prob = 1.0 nothing else ever triggers.
        let spec = FaultSpec {
            drop_prob: 1.0,
            corrupt_prob: 1.0,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec);
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(inj.judge(Nanos(0), 64, &mut rng), FaultVerdict::Drop);
        assert_eq!(inj.corrupted(), 0);
    }
}
