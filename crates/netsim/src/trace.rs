//! Simulation-wide trace: counters always, per-frame event log on demand.
//!
//! Counters are cheap and always collected. The detailed event log (one
//! entry per frame movement, pcap-spirited) is opt-in because long runs
//! generate millions of frames.

use crate::frame::FrameId;
use crate::link::LinkId;
use crate::node::{NodeId, PortId};
use crate::time::Nanos;

/// Why a frame disappeared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss injected by the fault model.
    Fault,
    /// Token-bucket rate limiter.
    RateLimit,
    /// Over the configured size limit.
    SizeLimit,
    /// Sent out of an unwired port.
    UnwiredPort,
}

/// One entry in the detailed event log.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A frame began serialization onto a link.
    Sent {
        /// When serialization started.
        at: Nanos,
        /// Transmitting node.
        node: NodeId,
        /// Egress port.
        port: PortId,
        /// Link carrying the frame.
        link: LinkId,
        /// Frame identity.
        frame: FrameId,
        /// Wire length in bytes.
        wire_len: usize,
    },
    /// A frame fully arrived at a node.
    Delivered {
        /// Arrival completion time.
        at: Nanos,
        /// Receiving node.
        node: NodeId,
        /// Ingress port.
        port: PortId,
        /// Frame identity.
        frame: FrameId,
    },
    /// A frame was lost.
    Dropped {
        /// When the drop happened.
        at: Nanos,
        /// Link (if it reached one).
        link: Option<LinkId>,
        /// Frame identity.
        frame: FrameId,
        /// Why.
        reason: DropReason,
    },
    /// A frame was corrupted in flight (still delivered).
    Corrupted {
        /// When.
        at: Nanos,
        /// Link.
        link: LinkId,
        /// Frame identity.
        frame: FrameId,
    },
}

/// Aggregate counters, always on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Frames that began serialization.
    pub sent: u64,
    /// Frames delivered to a device.
    pub delivered: u64,
    /// Frames dropped for any reason.
    pub dropped: u64,
    /// Frames corrupted but delivered.
    pub corrupted: u64,
    /// Frames duplicated by fault injection.
    pub duplicated: u64,
    /// Device timer callbacks fired.
    pub timers_fired: u64,
}

/// Collector owned by the simulator.
#[derive(Debug, Default)]
pub struct TraceSink {
    counters: TraceCounters,
    events: Vec<TraceEvent>,
    record_events: bool,
}

impl TraceSink {
    /// Counters only.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Enable/disable the detailed per-frame log.
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// Aggregate counters.
    pub fn counters(&self) -> TraceCounters {
        self.counters
    }

    /// The detailed log (empty unless recording was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub(crate) fn on_sent(&mut self, ev: TraceEvent) {
        self.counters.sent += 1;
        self.push(ev);
    }

    pub(crate) fn on_delivered(&mut self, ev: TraceEvent) {
        self.counters.delivered += 1;
        self.push(ev);
    }

    pub(crate) fn on_dropped(&mut self, ev: TraceEvent) {
        self.counters.dropped += 1;
        self.push(ev);
    }

    pub(crate) fn on_corrupted(&mut self, ev: TraceEvent) {
        self.counters.corrupted += 1;
        self.push(ev);
    }

    pub(crate) fn on_duplicated(&mut self) {
        self.counters.duplicated += 1;
    }

    pub(crate) fn on_timer_fired(&mut self) {
        self.counters.timers_fired += 1;
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.record_events {
            self.events.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_without_event_log() {
        let mut sink = TraceSink::new();
        sink.on_sent(TraceEvent::Sent {
            at: Nanos(0),
            node: NodeId(0),
            port: PortId(0),
            link: LinkId(0),
            frame: FrameId(1),
            wire_len: 84,
        });
        assert_eq!(sink.counters().sent, 1);
        assert!(sink.events().is_empty(), "log off by default");
    }

    #[test]
    fn event_log_when_enabled() {
        let mut sink = TraceSink::new();
        sink.set_record_events(true);
        sink.on_dropped(TraceEvent::Dropped {
            at: Nanos(5),
            link: None,
            frame: FrameId(9),
            reason: DropReason::UnwiredPort,
        });
        assert_eq!(sink.counters().dropped, 1);
        assert_eq!(sink.events().len(), 1);
    }
}
