//! The event queue at the heart of the discrete-event engine.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in the order they were scheduled. This makes
//! every simulation a deterministic function of its inputs and seed.

use crate::frame::EthFrame;
use crate::node::{NodeId, PortId};
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A frame finishes arriving at a node's port.
    FrameArrival {
        /// Receiving node.
        node: NodeId,
        /// Receiving port on that node.
        port: PortId,
        /// The frame (possibly corrupted in flight), boxed so the
        /// event stays small: heap sift operations move 16-byte
        /// entries instead of a full inline frame.
        frame: Box<EthFrame>,
    },
    /// A device timer expires. `token` is device-defined.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Device-defined discriminator.
        token: u64,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: Nanos,
    /// Tie-break: schedule order.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic priority queue of pending events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Grow the backing heap to hold at least `additional` more events
    /// without reallocating — callers with topology knowledge pre-size
    /// once instead of paying doubling copies on the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), timer(0, 3));
        q.push(Nanos(10), timer(0, 1));
        q.push(Nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(Nanos(5), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(7), timer(0, 0));
        q.push(Nanos(3), timer(0, 1));
        assert_eq!(q.peek_time(), Some(Nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Nanos(7)));
    }
}
