//! The event queue at the heart of the discrete-event engine.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in the order they were scheduled. This makes
//! every simulation a deterministic function of its inputs and seed.
//!
//! ## Implementation: a calendar queue with a sorted overflow tier
//!
//! A `BinaryHeap` served the first few thousand events fine, but its
//! `O(log n)` sift cost degrades ~7× between 1 k and 100 k pending
//! events — fatal for a factory campus with millions of frames in
//! flight. The queue is therefore a **calendar queue** (Brown 1988):
//!
//! - A power-of-two array of buckets, each `2^width_shift` ns wide,
//!   covering one sliding "year" `[cur_floor, cur_floor + year_len)`.
//!   An event at time `t` inside the year lands in bucket
//!   `(t >> width_shift) & mask` — **O(1) insert**.
//! - Events beyond the year go to a sorted **overflow tier** (a binary
//!   heap); as the cursor slides forward, events whose window entered
//!   the year are merged back into buckets. Each event overflows at
//!   most once, so the amortized cost stays O(1).
//! - Pop scans forward from the cursor bucket; the first non-empty
//!   bucket holds the global minimum (buckets ahead cover strictly
//!   later windows, the overflow tier strictly later still). Within a
//!   bucket the minimum is chosen by `(time, seq)` **value** order, so
//!   the pop sequence is bit-identical to the old heap regardless of
//!   bucket geometry. A memo caches the scan between `peek_time` and
//!   the `pop` that follows it.
//! - The queue reshapes itself (bucket count from the pending
//!   population, bucket width from the median inter-event gap of a
//!   deterministic sample) when occupancy leaves the `[n/8, 2n]`
//!   band — the classic doubling/halving schedule, so reshape cost is
//!   amortized O(1) per operation.
//!
//! Every decision above is a pure function of the push/pop sequence:
//! no capacity heuristics depend on addresses, wall time or hashing,
//! so the queue upholds the workspace determinism contract.

use crate::frame::EthFrame;
use crate::node::{NodeId, PortId};
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A frame finishes arriving at a node's port.
    FrameArrival {
        /// Receiving node.
        node: NodeId,
        /// Receiving port on that node.
        port: PortId,
        /// The frame (possibly corrupted in flight), boxed so the
        /// event stays small: bucket and heap operations move 16-byte
        /// entries instead of a full inline frame.
        frame: Box<EthFrame>,
    },
    /// A device timer expires. `token` is device-defined.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Device-defined discriminator.
        token: u64,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: Nanos,
    /// Tie-break: schedule order.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 16;
/// Default bucket width (2^6 = 64 ns) before any population estimate.
const DEFAULT_WIDTH_SHIFT: u32 = 6;
/// Sample size for the median-gap bucket-width estimate at reshape.
const WIDTH_SAMPLE: usize = 64;
/// Null slab index terminating a bucket's intrusive list.
const NIL: u32 = u32::MAX;

/// Deterministic priority queue of pending events.
///
/// Calendar tier + sorted overflow tier; see the module docs for the
/// structure. Total order is exactly `(time, seq)` — identical to the
/// former `BinaryHeap` implementation, which the determinism tests
/// below assert against a reference heap.
///
/// Storage is an intrusive slab: events live in one flat `slab`
/// vector, each bucket is a singly-linked list threaded through the
/// parallel `next` array, and `heads` holds one `u32` per bucket. This
/// keeps the empty-bucket cursor walk a sequential scan over a dense
/// `u32` array (16 buckets per cache line) and makes push touch one
/// random cache line instead of a bucket header plus a spilled
/// per-bucket allocation.
#[derive(Debug)]
pub struct EventQueue {
    /// Flat event storage; freed slots are recycled via `free`.
    slab: Vec<Event>,
    /// `next[i]` chains slab slot `i` into its bucket's list.
    next: Vec<u32>,
    /// Recycled slab slots, reused most-recently-freed first.
    free: Vec<u32>,
    /// Per-bucket list head (slab index or `NIL`); length is a power
    /// of two.
    heads: Vec<u32>,
    /// `heads.len() - 1`, for masked index arithmetic.
    mask: usize,
    /// Bucket width is `1 << width_shift` nanoseconds.
    width_shift: u32,
    /// `heads.len() << width_shift` — the span of one year.
    year_len: u64,
    /// Cursor bucket index; the next pop scans from here.
    cur: usize,
    /// Start of the cursor bucket's time window.
    cur_floor: u64,
    /// Exclusive upper bound of the calendar's sliding year; events at
    /// or beyond it live in `overflow`.
    year_end: u64,
    /// Events currently in calendar buckets.
    cal_len: usize,
    /// Far-future tier: min-first by the reversed `Ord` on `Event`.
    overflow: BinaryHeap<Event>,
    /// Total pending events (calendar + overflow).
    len: usize,
    /// Next schedule-order tie-break.
    next_seq: u64,
    /// Memoized minimum `(bucket, slab index)` from the last scan;
    /// cleared by pop/reshape, tightened by pushes that beat it.
    memo: Option<(usize, u32)>,
    /// Capacity hint from [`EventQueue::reserve`], consumed by the
    /// next reshape so topology-sized scenarios size the calendar once.
    hint: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_geometry(MIN_BUCKETS, DEFAULT_WIDTH_SHIFT)
    }
}

/// Placeholder written into a slab slot as its event is moved out.
fn tombstone() -> Event {
    Event {
        at: Nanos(0),
        seq: 0,
        kind: EventKind::Timer {
            node: NodeId(0),
            token: 0,
        },
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    fn with_geometry(nbuckets: usize, width_shift: u32) -> Self {
        let nbuckets = nbuckets.next_power_of_two().max(MIN_BUCKETS);
        // Keep the year length representable: cap the shift so that
        // nbuckets << shift cannot overflow u64.
        let width_shift = width_shift.min(62 - nbuckets.trailing_zeros());
        EventQueue {
            slab: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; nbuckets],
            mask: nbuckets - 1,
            width_shift,
            year_len: (nbuckets as u64) << width_shift,
            cur: 0,
            cur_floor: 0,
            year_end: (nbuckets as u64) << width_shift,
            cal_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            memo: None,
            hint: 0,
        }
    }

    /// Bucket index an in-year time maps to.
    #[inline]
    fn index_of(&self, at: u64) -> usize {
        ((at >> self.width_shift) as usize) & self.mask
    }

    /// Anchor the cursor and year window at time `at`.
    fn anchor(&mut self, at: u64) {
        self.cur_floor = (at >> self.width_shift) << self.width_shift;
        self.cur = self.index_of(at);
        self.year_end = self.cur_floor.saturating_add(self.year_len);
    }

    /// Schedule `kind` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { at, seq, kind };
        if self.len == 0 {
            self.anchor(at.0);
        }
        self.place(ev);
        self.len += 1;
        if self.len > 2 * self.heads.len() {
            self.reshape();
        }
    }

    /// Store one event in the slab and return its slot.
    fn alloc_slot(&mut self, ev: Event) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = ev;
                i
            }
            None => {
                debug_assert!(self.slab.len() < NIL as usize, "slab index overflow");
                self.slab.push(ev);
                self.next.push(NIL);
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// Put one event into its tier. Updates `cal_len` and the memo but
    /// not `len` (shared by `push` and the overflow merge).
    fn place(&mut self, ev: Event) {
        let t = ev.at.0;
        if t >= self.year_end {
            self.overflow.push(ev);
            return;
        }
        // Times at or before the cursor's window (the engine never
        // schedules into the past, but the structure must stay correct
        // if a caller does) collapse into the cursor bucket, where the
        // value-ordered scan still pops them first.
        let b = if t < self.cur_floor {
            self.cur
        } else {
            self.index_of(t)
        };
        let idx = self.alloc_slot(ev);
        self.next[idx as usize] = self.heads[b];
        self.heads[b] = idx;
        // A push that beats the memoized minimum becomes the memo; on
        // an equal time the memo wins (its seq is older). List inserts
        // go at the head, so a memoized slab index stays valid.
        if let Some((_, mi)) = self.memo {
            if t < self.slab[mi as usize].at.0 {
                self.memo = Some((b, idx));
            }
        }
        self.cal_len += 1;
    }

    /// Pull overflow events whose window slid into the year.
    fn merge_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if head.at.0 >= self.year_end {
                break;
            }
            // steelcheck: allow(unwrap-in-lib): peek above proved the heap is non-empty
            let ev = self.overflow.pop().expect("peeked overflow entry");
            let b = self.index_of(ev.at.0);
            let idx = self.alloc_slot(ev);
            self.next[idx as usize] = self.heads[b];
            self.heads[b] = idx;
            self.cal_len += 1;
        }
    }

    /// Advance the cursor / merge tiers until the memo points at the
    /// global minimum. No-op when memoized or empty.
    fn ensure_memo(&mut self) {
        if self.memo.is_some() || self.len == 0 {
            return;
        }
        loop {
            if self.cal_len == 0 {
                // Calendar dry: jump the year straight to the earliest
                // far-future event instead of walking empty buckets.
                // steelcheck: allow(unwrap-in-lib): len > 0 and cal_len == 0 imply overflow is non-empty
                let t = self.overflow.peek().expect("overflow holds the backlog").at.0;
                self.anchor(t);
                self.merge_overflow();
            }
            if self.heads[self.cur] != NIL {
                let mut best = self.heads[self.cur];
                let mut best_key = {
                    let e = &self.slab[best as usize];
                    (e.at, e.seq)
                };
                let mut i = self.next[best as usize];
                while i != NIL {
                    let e = &self.slab[i as usize];
                    if (e.at, e.seq) < best_key {
                        best = i;
                        best_key = (e.at, e.seq);
                    }
                    i = self.next[i as usize];
                }
                self.memo = Some((self.cur, best));
                return;
            }
            self.cur = (self.cur + 1) & self.mask;
            self.cur_floor = self.cur_floor.saturating_add(1 << self.width_shift);
            self.year_end = self.year_end.saturating_add(1 << self.width_shift);
            self.merge_overflow();
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.ensure_memo();
        let (b, idx) = self.memo.take()?;
        // Unlink `idx` from its bucket list (typically at or near the
        // head: calendar occupancy hovers around one event per bucket).
        if self.heads[b] == idx {
            self.heads[b] = self.next[idx as usize];
        } else {
            let mut prev = self.heads[b];
            while self.next[prev as usize] != idx {
                prev = self.next[prev as usize];
            }
            self.next[prev as usize] = self.next[idx as usize];
        }
        let ev = std::mem::replace(&mut self.slab[idx as usize], tombstone());
        self.free.push(idx);
        self.cal_len -= 1;
        self.len -= 1;
        if self.heads.len() > MIN_BUCKETS && self.len < self.heads.len() / 8 {
            self.reshape();
        }
        Some(ev)
    }

    /// Time of the earliest pending event.
    ///
    /// Takes `&mut self` because the calendar memoizes the scan for the
    /// `pop` that typically follows; the visible state is unchanged.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.ensure_memo();
        self.memo.map(|(_, i)| self.slab[i as usize].at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Size the calendar for at least `additional` more events.
    ///
    /// Recorded as a hint and applied at the next reshape, where bucket
    /// width is estimated from live events — callers with topology
    /// knowledge size the calendar once instead of paying doubling
    /// redistributions on the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.hint = self.hint.max(self.len + additional);
        self.slab.reserve(additional);
        self.next.reserve(additional);
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rebuild the bucket array for the current population: bucket
    /// count from `max(len, hint)`, bucket width from the median gap of
    /// a deterministic sample, cursor re-anchored at the pending
    /// minimum. Slab slots never move; only list links are rebuilt, and
    /// events migrate between the calendar and overflow tiers as the
    /// new year boundary dictates.
    fn reshape(&mut self) {
        // Occupied slots, gathered by walking every bucket list.
        let mut occupied: Vec<u32> = Vec::with_capacity(self.cal_len);
        for b in 0..self.heads.len() {
            let mut i = self.heads[b];
            while i != NIL {
                occupied.push(i);
                i = self.next[i as usize];
            }
        }
        let target = self.len.max(self.hint).max(MIN_BUCKETS);
        self.hint = 0;
        let nbuckets = target.next_power_of_two();
        let times: Vec<u64> = occupied
            .iter()
            .map(|&i| self.slab[i as usize].at.0)
            .chain(self.overflow.iter().map(|e| e.at.0))
            .collect();
        let width_shift =
            estimate_width_shift(&times).min(62 - nbuckets.trailing_zeros() as u32);
        self.heads = vec![NIL; nbuckets];
        self.mask = nbuckets - 1;
        self.width_shift = width_shift;
        self.year_len = (nbuckets as u64) << width_shift;
        self.memo = None;
        let min_t = times.iter().copied().min().unwrap_or(0);
        self.anchor(min_t);
        // Relink calendar events under the new geometry; those beyond
        // the new year boundary migrate to the overflow tier.
        for idx in occupied {
            let t = self.slab[idx as usize].at.0;
            if t >= self.year_end {
                let ev = std::mem::replace(&mut self.slab[idx as usize], tombstone());
                self.free.push(idx);
                self.overflow.push(ev);
                self.cal_len -= 1;
            } else {
                let b = self.index_of(t);
                self.next[idx as usize] = self.heads[b];
                self.heads[b] = idx;
            }
        }
        // And pull back overflow events the new year now covers.
        self.merge_overflow();
    }
}

/// Width estimate for reshape: the median inter-event gap over a
/// deterministic sample, floored to a power of two. A bucket about one
/// typical gap wide keeps occupancy near one event per bucket, which is
/// where calendar queues are O(1).
fn estimate_width_shift(times: &[u64]) -> u32 {
    if times.len() < 2 {
        return DEFAULT_WIDTH_SHIFT;
    }
    let step = (times.len() / WIDTH_SAMPLE).max(1);
    let mut sample: Vec<u64> = times.iter().copied().step_by(step).take(WIDTH_SAMPLE).collect();
    sample.sort_unstable();
    let mut gaps: Vec<u64> = sample
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    if gaps.is_empty() {
        // All sampled times tie: width cannot separate them anyway.
        return 0;
    }
    gaps.sort_unstable();
    gaps[gaps.len() / 2].ilog2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    fn token_of(e: Event) -> u64 {
        match e.kind {
            EventKind::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos(30), timer(0, 3));
        q.push(Nanos(10), timer(0, 1));
        q.push(Nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        for token in 0..100 {
            q.push(Nanos(5), timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos(7), timer(0, 0));
        q.push(Nanos(3), timer(0, 1));
        assert_eq!(q.peek_time(), Some(Nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Nanos(7)));
    }

    #[test]
    fn push_after_peek_can_tighten_the_minimum() {
        let mut q = EventQueue::new();
        q.push(Nanos(50), timer(0, 0));
        assert_eq!(q.peek_time(), Some(Nanos(50)));
        // A later push with an earlier time must displace the memo.
        q.push(Nanos(40), timer(0, 1));
        assert_eq!(q.peek_time(), Some(Nanos(40)));
        // An equal-time push must NOT displace it (older seq wins).
        q.push(Nanos(40), timer(0, 2));
        assert_eq!(token_of(q.pop().expect("pending")), 1);
        assert_eq!(token_of(q.pop().expect("pending")), 2);
        assert_eq!(token_of(q.pop().expect("pending")), 0);
    }

    #[test]
    fn far_future_events_round_trip_the_overflow_tier() {
        let mut q = EventQueue::new();
        // Near events fill the first year; the spike lands far beyond
        // any initial year window and must come back in order.
        q.push(Nanos(5), timer(0, 0));
        q.push(Nanos(1 << 40), timer(0, 1));
        q.push(Nanos(6), timer(0, 2));
        q.push(Nanos((1 << 40) + 1), timer(0, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(token_of).collect();
        assert_eq!(order, vec![0, 2, 1, 3]);
    }

    #[test]
    fn drain_refill_cycles_keep_order() {
        // Shrink reshapes and empty-queue re-anchoring must not lose
        // or reorder anything across repeated drain/refill cycles.
        let mut q = EventQueue::new();
        for round in 0..5u64 {
            let base = round * 1_000_000;
            for i in 0..300u64 {
                q.push(Nanos(base + (i * 37) % 500), timer(0, i));
            }
            let mut last: Option<(Nanos, u64)> = None;
            let mut popped = 0;
            while let Some(e) = q.pop() {
                assert!(
                    last.is_none_or(|l| (e.at, e.seq) > l),
                    "order violated in round {round}"
                );
                last = Some((e.at, e.seq));
                popped += 1;
            }
            assert_eq!(popped, 300);
        }
    }

    /// The original `BinaryHeap` queue, kept verbatim as the ordering
    /// oracle for the calendar implementation.
    #[derive(Default)]
    struct ReferenceQueue {
        heap: BinaryHeap<Event>,
        next_seq: u64,
    }

    impl ReferenceQueue {
        fn push(&mut self, at: Nanos, kind: EventKind) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Event { at, seq, kind });
        }
        fn pop(&mut self) -> Option<Event> {
            self.heap.pop()
        }
    }

    /// Drive the calendar queue and the reference heap through the same
    /// seeded workload and assert bit-identical pop sequences.
    fn assert_matches_reference(seed: u64, ops: usize, time_spread: u64, far_prob: f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut cal = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut now = 0u64;
        let mut token = 0u64;
        for op in 0..ops {
            // Mixed workload: mostly pushes early, then drain pressure.
            let push = cal.is_empty() || rng.below(100) < if op < ops / 2 { 70 } else { 35 };
            if push {
                let mut at = now + rng.below(time_spread);
                if far_prob > 0.0 && rng.below(1000) < (far_prob * 1000.0) as u64 {
                    // Far-future spike: exercises the overflow tier.
                    at = now + time_spread * 1000 + rng.below(time_spread);
                }
                if rng.below(10) == 0 {
                    at = now; // deliberate same-time tie burst
                }
                cal.push(Nanos(at), timer(0, token));
                reference.push(Nanos(at), timer(0, token));
                token += 1;
            } else {
                let a = cal.pop();
                let b = reference.pop();
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq), (y.at, y.seq), "divergence at op {op}");
                        now = now.max(x.at.0);
                    }
                    (None, None) => {}
                    (x, y) => panic!(
                        "length divergence at op {op}: cal={:?} ref={:?}",
                        x.map(|e| e.at),
                        y.map(|e| e.at)
                    ),
                }
            }
        }
        // Full drain must agree too.
        loop {
            match (cal.pop(), reference.pop()) {
                (Some(x), Some(y)) => assert_eq!((x.at, x.seq), (y.at, y.seq)),
                (None, None) => break,
                _ => panic!("drain length divergence"),
            }
        }
    }

    #[test]
    fn matches_reference_heap_dense_times() {
        assert_matches_reference(0xC0FFEE, 20_000, 64, 0.0);
    }

    #[test]
    fn matches_reference_heap_sparse_times() {
        assert_matches_reference(0xBEEF, 20_000, 1_000_000, 0.0);
    }

    #[test]
    fn matches_reference_heap_with_ties_and_far_future() {
        assert_matches_reference(0x5EED, 20_000, 10_000, 0.02);
    }

    #[test]
    fn matches_reference_heap_across_seeds() {
        for seed in 1..=8u64 {
            assert_matches_reference(seed, 4_000, 1 << (seed % 20), 0.01);
        }
    }
}
