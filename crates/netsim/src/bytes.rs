//! A minimal cheaply-cloneable immutable byte buffer.
//!
//! Frames are cloned at every tap, mirror port and retransmission, so
//! payloads must be reference-counted rather than deep-copied. The
//! workspace used to pull the `bytes` crate for this; a hermetic,
//! offline-buildable workspace only needs this small subset: an
//! `Arc<[u8]>` with slice ergonomics. Construction from a `Vec<u8>` or
//! slice copies once; every subsequent clone is a pointer bump.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable contiguous byte buffer.
///
/// Dereferences to `&[u8]`, so all slice methods (`len`, `iter`,
/// indexing, `to_vec`, ...) apply directly.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// A new empty buffer. Does not allocate a backing store per call.
    pub fn new() -> Bytes {
        // An empty Arc<[u8]> allocates only the refcount header; cheap
        // enough, and `Bytes::new()` is rare on hot paths.
        Bytes(Arc::from(&[][..]))
    }

    /// Buffer backed by a static slice (copied once into the Arc; the
    /// name mirrors `bytes::Bytes::from_static` for the call sites).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Mutable access when this is the sole reference to the buffer.
    ///
    /// Returns `None` if any clone is alive, preserving the immutable
    /// sharing contract. Lets hot paths (e.g. in-flight corruption)
    /// flip bytes in place instead of copying the whole payload.
    pub fn get_mut(&mut self) -> Option<&mut [u8]> {
        Arc::get_mut(&mut self.0)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Bytes {
        Bytes(Arc::from(&a[..]))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == **other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            // Matches bytes::Bytes's readable escape style.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from_static(b"pong").len(), 4);
        assert_eq!(Bytes::from(&[9u8, 8][..]), Bytes::from(vec![9u8, 8]));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        // Same backing allocation, not a deep copy.
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn cross_type_equality() {
        let b = Bytes::from(vec![1u8, 2]);
        assert_eq!(b, vec![1u8, 2]);
        assert_eq!(b, &[1u8, 2][..]);
        assert_eq!(vec![1u8, 2], b);
    }

    #[test]
    fn get_mut_only_when_unshared() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        a.get_mut().expect("sole owner")[1] = 9;
        assert_eq!(a, &[1u8, 9, 3][..]);
        let b = a.clone();
        assert!(a.get_mut().is_none(), "shared buffer must stay immutable");
        drop(b);
        assert!(a.get_mut().is_some(), "unique again after clone drops");
    }

    #[test]
    fn debug_is_readable() {
        let b = Bytes::from(&b"ok\x01"[..]);
        assert_eq!(format!("{b:?}"), "b\"ok\\x01\"");
    }
}
