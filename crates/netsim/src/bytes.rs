//! A minimal cheaply-cloneable immutable byte buffer.
//!
//! Frames are cloned at every tap, mirror port and retransmission, so
//! payloads must be reference-counted rather than deep-copied. The
//! workspace used to pull the `bytes` crate for this; a hermetic,
//! offline-buildable workspace only needs this small subset: an
//! `Arc<[u8]>` with slice ergonomics. Construction from a `Vec<u8>` or
//! slice copies once; every subsequent clone is a pointer bump.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable contiguous byte buffer.
///
/// Dereferences to `&[u8]`, so all slice methods (`len`, `iter`,
/// indexing, `to_vec`, ...) apply directly.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// A new empty buffer. Does not allocate a backing store per call.
    pub fn new() -> Bytes {
        // An empty Arc<[u8]> allocates only the refcount header; cheap
        // enough, and `Bytes::new()` is rare on hot paths.
        Bytes(Arc::from(&[][..]))
    }

    /// Buffer backed by a static slice (copied once into the Arc; the
    /// name mirrors `bytes::Bytes::from_static` for the call sites).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Mutable access when this is the sole reference to the buffer.
    ///
    /// Returns `None` if any clone is alive, preserving the immutable
    /// sharing contract. Lets hot paths (e.g. in-flight corruption)
    /// flip bytes in place instead of copying the whole payload.
    pub fn get_mut(&mut self) -> Option<&mut [u8]> {
        Arc::get_mut(&mut self.0)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes(Arc::from(s))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Bytes {
        Bytes(Arc::from(&a[..]))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == **other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

/// Most buffers a [`BytesPool`] parks per payload length before new
/// requests fall back to plain allocation.
const MAX_POOLED_PER_LEN: usize = 1024;

/// Slots probed per request before giving up and allocating fresh.
/// When a long-lived observer (a tap, a capture) pins every parked
/// buffer, an unbounded probe would rescan the whole class on every
/// take — O(class size) atomic loads per frame. Eight probes cover the
/// recycling steady state (a handful of buffers in flight) while
/// keeping the pinned-pool worst case a small constant.
const PROBE_LIMIT: usize = 8;

/// Free-list recycler for frame payload buffers.
///
/// Every frame a traffic source emits used to allocate a fresh
/// `Vec<u8>` plus an `Arc` header; at campus scale that is millions of
/// allocator round-trips inside the measured event loop. The pool
/// instead parks one clone of each buffer it hands out and recycles a
/// buffer once its `Arc` strong count drops back to 1 — i.e. every
/// frame, tap capture and pending event that referenced it has been
/// dropped. Shared buffers are never written: a recycled slot is
/// reinitialized only while the pool holds the sole reference, so the
/// copy-on-write contract of [`Bytes`] is preserved by construction.
///
/// Buffers are grouped by exact payload length (scenarios use a handful
/// of distinct frame sizes) in a `BTreeMap`, keeping iteration order —
/// and therefore simulation behavior — deterministic. Each length class
/// probes round-robin from a cursor and grows up to
/// [`MAX_POOLED_PER_LEN`] slots; beyond that, requests degrade to plain
/// one-off allocations rather than growing without bound.
#[derive(Debug, Default)]
pub struct BytesPool {
    classes: std::collections::BTreeMap<usize, PoolClass>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Default)]
struct PoolClass {
    bufs: Vec<Arc<[u8]>>,
    cursor: usize,
}

impl BytesPool {
    /// An empty pool; classes appear on first use.
    pub fn new() -> BytesPool {
        BytesPool::default()
    }

    /// A buffer of exactly `len` bytes, contents written by `init`.
    ///
    /// `init` always receives the full `len`-byte slice and must
    /// initialize all of it — recycled buffers carry whatever the
    /// previous user wrote.
    pub fn take_with(&mut self, len: usize, init: impl FnOnce(&mut [u8])) -> Bytes {
        if len == 0 {
            return Bytes::new();
        }
        let class = self.classes.entry(len).or_default();
        // Round-robin probe for a slot nobody references but us.
        let n = class.bufs.len();
        for step in 0..n.min(PROBE_LIMIT) {
            let i = (class.cursor + step) % n;
            if Arc::strong_count(&class.bufs[i]) == 1 {
                // steelcheck: allow(unwrap-in-lib): strong_count == 1 above proves unique ownership
                let slot = Arc::get_mut(&mut class.bufs[i]).expect("sole pool reference");
                init(slot);
                class.cursor = (i + 1) % n;
                self.hits += 1;
                return Bytes(Arc::clone(&class.bufs[i]));
            }
        }
        self.misses += 1;
        let mut fresh = vec![0u8; len];
        init(&mut fresh);
        let arc: Arc<[u8]> = Arc::from(fresh);
        if class.bufs.len() < MAX_POOLED_PER_LEN {
            class.bufs.push(Arc::clone(&arc));
        }
        // Advance past the probed window so consecutive misses do not
        // re-test the same pinned slots.
        class.cursor = if n == 0 { 0 } else { (class.cursor + PROBE_LIMIT) % n };
        Bytes(arc)
    }

    /// A zero-filled buffer of exactly `len` bytes — the common case
    /// for synthetic traffic payloads.
    pub fn take_zeroed(&mut self, len: usize) -> Bytes {
        self.take_with(len, |b| b.fill(0))
    }

    /// Buffers recycled from the free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that had to allocate (cold start or all slots busy).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total buffers currently parked across all length classes.
    pub fn pooled(&self) -> usize {
        self.classes.values().map(|c| c.bufs.len()).sum()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            // Matches bytes::Bytes's readable escape style.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from_static(b"pong").len(), 4);
        assert_eq!(Bytes::from(&[9u8, 8][..]), Bytes::from(vec![9u8, 8]));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        // Same backing allocation, not a deep copy.
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn cross_type_equality() {
        let b = Bytes::from(vec![1u8, 2]);
        assert_eq!(b, vec![1u8, 2]);
        assert_eq!(b, &[1u8, 2][..]);
        assert_eq!(vec![1u8, 2], b);
    }

    #[test]
    fn get_mut_only_when_unshared() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        a.get_mut().expect("sole owner")[1] = 9;
        assert_eq!(a, &[1u8, 9, 3][..]);
        let b = a.clone();
        assert!(a.get_mut().is_none(), "shared buffer must stay immutable");
        drop(b);
        assert!(a.get_mut().is_some(), "unique again after clone drops");
    }

    #[test]
    fn debug_is_readable() {
        let b = Bytes::from(&b"ok\x01"[..]);
        assert_eq!(format!("{b:?}"), "b\"ok\\x01\"");
    }

    #[test]
    fn pool_recycles_dropped_buffers() {
        let mut pool = BytesPool::new();
        let a = pool.take_zeroed(46);
        assert_eq!(a.len(), 46);
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
        // `a` still alive: the parked clone is shared, so a second take
        // of the same length must allocate.
        let b = pool.take_zeroed(46);
        assert_eq!(pool.misses(), 2);
        drop(a);
        drop(b);
        // Both buffers returned; the next take recycles.
        let c = pool.take_zeroed(46);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.pooled(), 2);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn pool_take_with_initializes_full_slice() {
        let mut pool = BytesPool::new();
        let a = pool.take_with(4, |b| b.copy_from_slice(&[1, 2, 3, 4]));
        assert_eq!(a, &[1u8, 2, 3, 4][..]);
        drop(a);
        // Recycled slot is dirty until init runs; take_with must hand
        // the caller a fully reinitialized view.
        let b = pool.take_with(4, |b| b.copy_from_slice(&[9, 9, 9, 9]));
        assert_eq!(b, &[9u8, 9, 9, 9][..]);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn pool_never_mutates_shared_buffers() {
        let mut pool = BytesPool::new();
        let a = pool.take_zeroed(8);
        let snapshot = a.clone();
        // Exhaust and refill: none of this may touch `a`'s contents.
        for _ in 0..16 {
            let _ = pool.take_with(8, |b| b.fill(0xEE));
        }
        assert_eq!(a, snapshot);
        assert!(a.iter().all(|&x| x == 0));
    }

    #[test]
    fn pool_zero_len_is_free() {
        let mut pool = BytesPool::new();
        let a = pool.take_zeroed(0);
        assert!(a.is_empty());
        assert_eq!(pool.pooled(), 0);
        assert_eq!(pool.misses(), 0);
    }

    #[test]
    fn pool_classes_are_per_length() {
        let mut pool = BytesPool::new();
        let a = pool.take_zeroed(46);
        let b = pool.take_zeroed(1500);
        assert_eq!(a.len(), 46);
        assert_eq!(b.len(), 1500);
        drop(a);
        // Freeing the 46B buffer must not satisfy a 1500B request.
        let _ = pool.take_zeroed(1500);
        assert_eq!(pool.misses(), 3);
        let _ = pool.take_zeroed(46);
        assert_eq!(pool.hits(), 1);
    }
}
