//! A learning Ethernet switch with strict-priority egress queues.
//!
//! Store-and-forward: a frame is forwarded only after it has fully
//! arrived, then spends a configurable lookup/fabric latency before
//! becoming eligible for egress. Each egress port has eight queues (one
//! per 802.1p PCP) drained by a strict-priority scheduler — how
//! industrial switches keep cyclic RT traffic (PCP 6) ahead of
//! best-effort IT flows sharing the same wire.

use crate::frame::EthFrame;
use crate::frame::MacAddr;
use crate::node::{Ctx, Device, PortId};
use crate::time::{NanoDur, Nanos};
use std::collections::{BTreeMap, VecDeque};

/// Per-egress-port scheduler state.
#[derive(Debug, Default)]
struct Egress {
    /// One FIFO per PCP, index 7 = highest priority.
    queues: [VecDeque<EthFrame>; 8],
    /// Transmitter busy until (mirrors the link's serialization state).
    busy_until: Nanos,
    /// Latest time a drain timer is already pending for, so a burst of
    /// enqueues while the transmitter is busy arms one timer, not one
    /// per frame.
    armed_until: Nanos,
    /// Frames dropped because the queue hit its cap or port is unwired.
    tail_drops: u64,
    /// High-water mark of total queued frames.
    peak_depth: usize,
}

impl Egress {
    fn depth(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn pop_highest(&mut self) -> Option<EthFrame> {
        self.queues.iter_mut().rev().find_map(|q| q.pop_front())
    }
}

/// Configuration for [`LearningSwitch`].
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Number of ports.
    pub ports: usize,
    /// Lookup + fabric latency between full arrival and egress
    /// eligibility. Industrial gigabit switches: ~1–3 µs.
    pub forwarding_latency: NanoDur,
    /// Per-egress-port queue capacity in frames (all PCPs combined).
    pub queue_capacity: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 8,
            forwarding_latency: NanoDur(1_500),
            queue_capacity: 512,
        }
    }
}

/// MAC-learning store-and-forward switch.
#[derive(Debug)]
pub struct LearningSwitch {
    name: String,
    cfg: SwitchConfig,
    fdb: BTreeMap<MacAddr, PortId>,
    egress: Vec<Egress>,
    /// Frames waiting out the forwarding latency: (eligible_at, out, frame).
    staged: Vec<(Nanos, PortId, EthFrame)>,
    frames_forwarded: u64,
    frames_flooded: u64,
    frames_filtered: u64,
}

/// Timer token: staged frames became eligible.
const TOKEN_STAGE: u64 = 1;
/// Timer token namespace: egress-port drain timers.
const TOKEN_DRAIN_BASE: u64 = 1 << 32;

impl LearningSwitch {
    /// A switch with the given name and config.
    pub fn new(name: impl Into<String>, cfg: SwitchConfig) -> Self {
        let egress = (0..cfg.ports).map(|_| Egress::default()).collect();
        LearningSwitch {
            name: name.into(),
            cfg,
            fdb: BTreeMap::new(),
            egress,
            staged: Vec::new(),
            frames_forwarded: 0,
            frames_flooded: 0,
            frames_filtered: 0,
        }
    }

    /// An 8-port switch with default latency/queueing.
    pub fn eight_port(name: impl Into<String>) -> Self {
        LearningSwitch::new(name, SwitchConfig::default())
    }

    /// Learned forwarding table size.
    pub fn fdb_len(&self) -> usize {
        self.fdb.len()
    }

    /// Frames forwarded to a single learned port.
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// Frames flooded (unknown destination / multicast).
    pub fn frames_flooded(&self) -> u64 {
        self.frames_flooded
    }

    /// Frames filtered (destination learned on the ingress port).
    pub fn frames_filtered(&self) -> u64 {
        self.frames_filtered
    }

    /// Total tail drops across all egress ports.
    pub fn tail_drops(&self) -> u64 {
        self.egress.iter().map(|e| e.tail_drops).sum()
    }

    /// Largest queue depth observed on any port.
    pub fn peak_queue_depth(&self) -> usize {
        self.egress.iter().map(|e| e.peak_depth).max().unwrap_or(0)
    }

    /// Pre-seed the forwarding table (commissioned industrial networks
    /// are static; operators often pin the FDB).
    pub fn learn_static(&mut self, mac: MacAddr, port: PortId) {
        self.fdb.insert(mac, port);
    }

    fn stage(&mut self, ctx: &mut Ctx<'_>, out: PortId, frame: EthFrame) {
        if self.cfg.forwarding_latency.as_nanos() == 0 {
            self.enqueue(ctx, out, frame);
        } else {
            let at = ctx.now() + self.cfg.forwarding_latency;
            self.staged.push((at, out, frame));
            ctx.timer_at(at, TOKEN_STAGE);
        }
    }

    fn enqueue(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EthFrame) {
        if port.0 >= self.egress.len() {
            return;
        }
        let cap = self.cfg.queue_capacity;
        let eg = &mut self.egress[port.0];
        if eg.depth() >= cap {
            eg.tail_drops += 1;
            return;
        }
        let pcp = frame.priority().min(7) as usize;
        eg.queues[pcp].push_back(frame);
        let depth = eg.depth();
        eg.peak_depth = eg.peak_depth.max(depth);
        self.drain(ctx, port);
    }

    /// Transmit the head of the highest-priority non-empty queue if the
    /// egress transmitter is idle; otherwise the pending drain timer
    /// picks it up when the transmitter frees.
    fn drain(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        let now = ctx.now();
        let Some(rate) = ctx.link_rate(port) else {
            let eg = &mut self.egress[port.0];
            while eg.pop_highest().is_some() {
                eg.tail_drops += 1;
            }
            return;
        };
        let eg = &mut self.egress[port.0];
        if eg.busy_until > now {
            // A frame enqueued mid-serialization may be the last event
            // this port ever sees: re-arm the drain timer or the frame
            // sits in the queue forever. `armed_until` dedups the
            // re-arm so a burst of enqueues schedules one timer.
            if eg.depth() > 0 && eg.armed_until < eg.busy_until {
                eg.armed_until = eg.busy_until;
                ctx.timer_at(eg.busy_until, TOKEN_DRAIN_BASE + port.0 as u64);
            }
            return;
        }
        if let Some(frame) = eg.pop_highest() {
            let ser = NanoDur::for_bits(frame.wire_bits(), rate);
            eg.busy_until = now + ser;
            ctx.send(port, frame);
            if eg.depth() > 0 {
                eg.armed_until = eg.busy_until;
                ctx.timer_at(eg.busy_until, TOKEN_DRAIN_BASE + port.0 as u64);
            }
        }
    }
}

impl Device for LearningSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, ingress: PortId, frame: EthFrame) {
        if !frame.src.is_multicast() {
            self.fdb.insert(frame.src, ingress);
        }
        match self.fdb.get(&frame.dst).copied() {
            Some(out) if !frame.dst.is_multicast() => {
                if out == ingress {
                    self.frames_filtered += 1;
                } else {
                    self.frames_forwarded += 1;
                    self.stage(ctx, out, frame);
                }
            }
            _ => {
                self.frames_flooded += 1;
                for p in 0..self.cfg.ports {
                    if p != ingress.0 {
                        // steelcheck: allow(hot-path-alloc): flood fan-out needs one frame per port; payload clones by Arc refcount
                        self.stage(ctx, PortId(p), frame.clone());
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_STAGE {
            let now = ctx.now();
            let mut ready = Vec::new();
            let mut waiting = Vec::new();
            for entry in self.staged.drain(..) {
                if entry.0 <= now {
                    ready.push(entry);
                } else {
                    waiting.push(entry);
                }
            }
            self.staged = waiting;
            for (_, port, frame) in ready {
                self.enqueue(ctx, port, frame);
            }
        } else if token >= TOKEN_DRAIN_BASE {
            let port = PortId((token - TOKEN_DRAIN_BASE) as usize);
            self.drain(ctx, port);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{ethertype, VlanTag};
    use crate::link::LinkSpec;
    use crate::node::NullDevice;
    use crate::sim::Simulator;
    use crate::bytes::Bytes;

    /// Sends a fixed list of (dst, pcp, payload_len) frames at start.
    struct Scripted {
        mac: MacAddr,
        script: Vec<(MacAddr, Option<u8>, usize)>,
    }

    impl Device for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (dst, pcp, len) in self.script.drain(..) {
                let mut f = EthFrame::new(
                    dst,
                    self.mac,
                    ethertype::SIM_TEST,
                    Bytes::from(vec![0u8; len]),
                );
                if let Some(p) = pcp {
                    f = f.with_vlan(VlanTag { pcp: p, vid: 100 });
                }
                ctx.send(PortId(0), f);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _f: EthFrame) {}
    }

    #[test]
    fn learns_and_forwards_unicast() {
        let mut sim = Simulator::new(1);
        let ha = MacAddr::local(1);
        let hb = MacAddr::local(2);
        let a = sim.add_node(Scripted {
            mac: ha,
            script: vec![(hb, None, 46)],
        });
        let b = sim.add_node(Scripted {
            mac: hb,
            script: vec![(ha, None, 46)],
        });
        let c = sim.add_node(NullDevice::new());
        let sw = sim.add_node(LearningSwitch::eight_port("sw0"));
        sim.connect(a, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(b, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.connect(c, PortId(0), sw, PortId(2), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(1));
        let s = sim.node_ref::<LearningSwitch>(sw);
        assert_eq!(s.fdb_len(), 2);
        // Both initial frames flood (dst unknown at arrival order), or
        // the second may be forwarded if it arrived after learning.
        assert!(s.frames_flooded() + s.frames_forwarded() == 2);
        // The null host saw at least one flooded copy.
        assert!(sim.node_ref::<NullDevice>(c).frames_seen() >= 1);
    }

    #[test]
    fn second_exchange_is_unicast_only() {
        let mut sim = Simulator::new(2);
        let ha = MacAddr::local(1);
        let hb = MacAddr::local(2);
        let a = sim.add_node(Scripted {
            mac: ha,
            script: vec![(hb, None, 46)],
        });
        let b = sim.add_node(NullDevice::new());
        let c = sim.add_node(NullDevice::new());
        let sw = sim.add_node({
            let mut s = LearningSwitch::eight_port("sw0");
            // Static commissioning: b's MAC pinned to port 1.
            s.learn_static(hb, PortId(1));
            s
        });
        sim.connect(a, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(b, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.connect(c, PortId(0), sw, PortId(2), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(1));
        let s = sim.node_ref::<LearningSwitch>(sw);
        assert_eq!(s.frames_forwarded(), 1);
        assert_eq!(s.frames_flooded(), 0);
        assert_eq!(sim.node_ref::<NullDevice>(b).frames_seen(), 1);
        assert_eq!(sim.node_ref::<NullDevice>(c).frames_seen(), 0);
    }

    #[test]
    fn frame_enqueued_during_serialization_still_drains() {
        // Regression: a frame reaching a busy egress transmitter used
        // to rely on later traffic to re-trigger the drain — if it was
        // the last frame the port ever saw, it sat queued forever and
        // the simulation went quiescent with the frame undelivered.
        let mut sim = Simulator::new(4);
        let ha = MacAddr::local(1);
        let hb = MacAddr::local(2);
        // A long frame (~8 µs egress serialization on gigabit) chased
        // by a short one that reaches the egress queue mid-transmit.
        let a = sim.add_node(Scripted {
            mac: ha,
            script: vec![(hb, None, 1000), (hb, None, 46)],
        });
        let b = sim.add_node(NullDevice::new());
        let sw = sim.add_node({
            let mut s = LearningSwitch::eight_port("sw0");
            s.learn_static(hb, PortId(1));
            s
        });
        sim.connect(a, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(b, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_to_quiescence();
        assert_eq!(sim.node_ref::<LearningSwitch>(sw).frames_forwarded(), 2);
        assert_eq!(sim.node_ref::<NullDevice>(b).frames_seen(), 2);
    }

    #[test]
    fn strict_priority_preempts_queue_order() {
        // Fill an egress port with low-priority frames, then one
        // high-priority frame: it must depart before the queued bulk.
        let mut sim = Simulator::new(3);
        let ha = MacAddr::local(1);
        let hb = MacAddr::local(2);
        let mut script: Vec<(MacAddr, Option<u8>, usize)> =
            (0..20).map(|_| (hb, Some(0), 1000)).collect();
        script.push((hb, Some(6), 46)); // RT frame last in arrival order
        let a = sim.add_node(Scripted { mac: ha, script });
        let b = sim.add_node(NullDevice::new());
        let sw = sim.add_node({
            let mut s = LearningSwitch::new(
                "sw0",
                SwitchConfig {
                    ports: 4,
                    forwarding_latency: NanoDur(1000),
                    queue_capacity: 512,
                },
            );
            s.learn_static(hb, PortId(1));
            s
        });
        // Fast ingress, slow egress: the bulk frames pile up in the
        // egress queue so priority scheduling has something to preempt.
        sim.connect(a, PortId(0), sw, PortId(0), LinkSpec::ten_gigabit());
        sim.connect(b, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.record_events(true);
        sim.run_until(Nanos::from_millis(5));
        assert_eq!(sim.node_ref::<NullDevice>(b).frames_seen(), 21);
        // Find the arrival order at b: the small RT frame must not be
        // last (it overtakes most of the bulk queue).
        let arrivals: Vec<usize> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::Sent { node, wire_len, .. } if *node == sw => {
                    Some(*wire_len)
                }
                _ => None,
            })
            .collect();
        let rt_pos = arrivals.iter().position(|&l| l < 100).unwrap();
        assert!(
            rt_pos < arrivals.len() - 5,
            "RT frame departed at position {rt_pos} of {}",
            arrivals.len()
        );
    }

    #[test]
    fn queue_capacity_tail_drops() {
        let mut sim = Simulator::new(4);
        let ha = MacAddr::local(1);
        let hb = MacAddr::local(2);
        let script: Vec<(MacAddr, Option<u8>, usize)> =
            (0..100).map(|_| (hb, None, 1400)).collect();
        let a = sim.add_node(Scripted { mac: ha, script });
        let b = sim.add_node(NullDevice::new());
        let sw = sim.add_node({
            let mut s = LearningSwitch::new(
                "sw0",
                SwitchConfig {
                    ports: 2,
                    forwarding_latency: NanoDur::ZERO,
                    queue_capacity: 10,
                },
            );
            s.learn_static(hb, PortId(1));
            s
        });
        // 10G in, 1G out: the egress queue overflows its 10-frame cap.
        sim.connect(a, PortId(0), sw, PortId(0), LinkSpec::ten_gigabit());
        sim.connect(b, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(20));
        let s = sim.node_ref::<LearningSwitch>(sw);
        assert!(s.tail_drops() > 0, "expected tail drops");
        assert_eq!(
            s.tail_drops() + sim.node_ref::<NullDevice>(b).frames_seen(),
            100
        );
        assert!(s.peak_queue_depth() <= 10);
    }
}
