//! Deterministic random numbers and the distribution samplers the
//! simulator needs.
//!
//! Reproducibility is a hard requirement: every figure in the paper
//! reproduction must regenerate bit-identically from a seed, on any
//! platform, from an offline checkout. The generator is therefore
//! vendored in-repo rather than pulled from crates.io: a ChaCha12
//! stream cipher core (the same algorithm `rand_chacha::ChaCha12Rng`
//! pins) with the exact output-buffering, seeding and sampling
//! conventions of `rand_core` 0.6 / `rand` 0.8, so the stream is
//! bit-identical to the previously used `rand_chacha`-backed
//! implementation. Known-answer tests below anchor the block function
//! to the published ChaCha12 test vectors
//! (draft-strombergson-chacha-test-vectors-01, TC1) and the composed
//! generator to a golden stream captured from the original stack.
//!
//! The handful of distributions the timing models need (normal,
//! log-normal, exponential, Pareto) are implemented here from first
//! principles.

/// ChaCha quarter round.
#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// Number of u32 results buffered per refill: four 16-word ChaCha
/// blocks, matching `rand_chacha`'s four-block-wide backend so the
/// word order of the output stream is identical.
const BUF_WORDS: usize = 64;

/// ChaCha12 keystream generator in the original (djb) configuration:
/// 64-bit block counter in words 12–13, 64-bit nonce (always zero
/// here) in words 14–15.
#[derive(Clone)]
struct ChaCha12 {
    /// Key words 4..12 of the state, little-endian from the seed.
    key: [u32; 8],
    /// 64-bit block counter of the *next* refill.
    counter: u64,
    /// Buffered keystream: 4 consecutive blocks.
    buf: [u32; BUF_WORDS],
    /// Next unconsumed word in `buf`; `BUF_WORDS` means empty.
    index: usize,
}

impl ChaCha12 {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            // steelcheck: allow(unwrap-in-lib): chunk is exactly 4 bytes: i ranges over a [u32; 8] against a [u8; 32] seed
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha12 {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// One 12-round block for block counter `ctr`, written to `out`.
    fn block(&self, ctr: u64, out: &mut [u32]) {
        let mut init = [0u32; 16];
        init[..4].copy_from_slice(&Self::CONSTANTS);
        init[4..12].copy_from_slice(&self.key);
        init[12] = ctr as u32;
        init[13] = (ctr >> 32) as u32;
        // Words 14–15: stream/nonce, fixed at zero.
        let mut s = init;
        for _ in 0..6 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = s[i].wrapping_add(init[i]);
        }
    }

    /// Refill the 4-block buffer and position the cursor at `index`.
    fn generate_and_set(&mut self, index: usize) {
        debug_assert!(index < BUF_WORDS);
        for i in 0..4 {
            let ctr = self.counter.wrapping_add(i as u64);
            let mut words = [0u32; 16];
            self.block(ctr, &mut words);
            self.buf[16 * i..16 * (i + 1)].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = index;
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    /// Two consecutive buffered words, low then high — including the
    /// buffer-straddling case, exactly as `rand_core`'s `BlockRng`.
    fn next_u64(&mut self) -> u64 {
        let i = self.index;
        if i < BUF_WORDS - 1 {
            self.index += 2;
            (self.buf[i] as u64) | ((self.buf[i + 1] as u64) << 32)
        } else if i >= BUF_WORDS {
            self.generate_and_set(2);
            (self.buf[0] as u64) | ((self.buf[1] as u64) << 32)
        } else {
            let lo = self.buf[BUF_WORDS - 1] as u64;
            self.generate_and_set(1);
            lo | ((self.buf[0] as u64) << 32)
        }
    }

    /// Fill `dest` with keystream bytes. Words are consumed whole:
    /// unused trailing bytes of the last word of a request are
    /// discarded (the `fill_via_u32_chunks` convention).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut read = 0;
        while read < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let want = dest.len() - read;
            let avail = BUF_WORDS - self.index;
            let consume = (want.div_ceil(4)).min(avail);
            let filled = (consume * 4).min(want);
            let mut chunk = [0u8; 4 * BUF_WORDS];
            for (i, w) in self.buf[self.index..self.index + consume].iter().enumerate() {
                chunk[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
            }
            dest[read..read + filled].copy_from_slice(&chunk[..filled]);
            self.index += consume;
            read += filled;
        }
    }
}

impl std::fmt::Debug for ChaCha12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Don't leak the key/stream position into debug logs; identity
        // is enough for diagnostics.
        f.debug_struct("ChaCha12").finish_non_exhaustive()
    }
}

/// The simulator's deterministic RNG.
///
/// A thin wrapper over the vendored ChaCha12 core with the
/// distribution samplers used by the host-noise, link-fault, and
/// workload models. Distinct subsystems should derive their own stream
/// with [`SimRng::fork`] so that adding draws in one subsystem does not
/// perturb another.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha12,
}

impl SimRng {
    /// Create a generator from a full 256-bit seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        SimRng {
            inner: ChaCha12::from_seed(seed),
        }
    }

    /// Create a generator from a 64-bit seed.
    ///
    /// The seed is expanded to the 256-bit ChaCha key with the PCG32
    /// output sequence `rand_core` 0.6 uses for `seed_from_u64`, so
    /// seeds map to identical streams as before the vendoring.
    pub fn seed_from_u64(seed: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut state = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        SimRng::from_seed(key)
    }

    /// Derive an independent child stream.
    ///
    /// The child is seeded from this generator's output mixed with a
    /// caller-supplied label, so `fork(1)` and `fork(2)` diverge even
    /// when called back-to-back.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Next 32 bits of the stream.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fill a byte slice from the stream.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    /// Uniform draw in `[0, 1)`.
    ///
    /// The top 53 bits of one `u64` draw, scaled — the multiply-based
    /// conversion `rand` 0.8's `Standard` uses for `f64`.
    pub fn f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Lemire widening-multiply rejection with the bit-shifted zone of
    /// `rand` 0.8's `UniformInt::<u64>::sample_single`, preserving both
    /// the values and the number of stream draws consumed.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below: empty range");
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let wide = (self.next_u64() as u128) * (n as u128);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range: empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal draw via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1: f64 = 1.0 - self.f64();
        let u2: f64 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal draw parameterized by the mean/σ of the underlying
    /// normal. Produces the right-skewed tails typical of OS latency.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Exponential draw with the given mean (`mean = 1/λ`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Pareto draw with scale `x_min` and shape `alpha` — heavy-tailed
    /// flow sizes and rare latency spikes.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u: f64 = 1.0 - self.f64();
        x_min / u.powf(1.0 / alpha)
    }

    /// Choose a uniformly random element of a slice. Panics when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ChaCha12, 256-bit all-zero key, zero nonce/counter, keystream
    /// block 0 — TC1 of draft-strombergson-chacha-test-vectors-01.
    /// Anchors the vendored block function to the published algorithm.
    #[test]
    fn chacha12_known_answer_tc1() {
        let mut r = SimRng::from_seed([0u8; 32]);
        let expected: [u32; 16] = [
            0x6a9a_f49b, 0x53f9_5507, 0x12ce_1f81, 0xd583_265f,
            0xbbc3_2904, 0x1474_e049, 0xa589_007e, 0x5f15_ae2e,
            0x79f8_6405, 0xc0e3_7ad2, 0x3428_e82c, 0x798c_faac,
            0x2c9f_623a, 0x1969_dea0, 0x2fe8_0b61, 0xbe26_1341,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(r.next_u32(), e, "word {i}");
        }
    }

    /// Block 1 of the same vector — exercises the counter increment.
    #[test]
    fn chacha12_known_answer_tc1_block1() {
        let mut r = SimRng::from_seed([0u8; 32]);
        for _ in 0..16 {
            r.next_u32();
        }
        let expected: [u32; 16] = [
            0x4188_d50b, 0xfe74_3e20, 0x3371_fc86, 0x3d17_e08c,
            0xb7eb_28c6, 0xcccb_bd19, 0x2185_1515, 0xb489_c04c,
            0xcd8d_2542, 0x11f1_4ca1, 0x97b8_02c6, 0x43c8_8c1b,
            0xca46_1ee9, 0xc051_5190, 0xb0a6_4427, 0x1693_e617,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(r.next_u32(), e, "word {}", 16 + i);
        }
    }

    /// The PCG32-based 64→256-bit seed expansion, pinned by the key it
    /// derives for seed 42 (verified against `rand_core` 0.6's
    /// `seed_from_u64`). The first block of the resulting stream then
    /// also pins the composed construction.
    #[test]
    fn seed_expansion_known_answer() {
        let key: [u8; 32] = [
            0xa4, 0x8f, 0xa1, 0x7b, 0x58, 0x32, 0x3d, 0x0a, 0xea, 0xb8, 0xa1, 0xcc, 0x69, 0x01,
            0x14, 0xb8, 0x2b, 0x8c, 0xc8, 0x75, 0x18, 0xb4, 0xf7, 0x54, 0x8d, 0x44, 0x6e, 0xa1,
            0xe4, 0xdf, 0x20, 0xf2,
        ];
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::from_seed(key);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Golden stream: the first 64 `next_u64` draws of seed 42,
    /// captured from the `rand_chacha 0.3` + `rand_core 0.6` stack this
    /// module replaces. Any change to these values would silently
    /// invalidate every checked-in figure.
    #[test]
    fn golden_seed42_first_64_draws() {
        let expected: [u64; 64] = [
            0x86cc7763222724a2, 0x8af00a133fad517d, 0xa2ef6071de5134d1, 0x67e92d78fd7630b2,
            0x08cab0dff8119fea, 0x6a3a9ca39e0f81a8, 0xbcc7d8e8590878fb, 0xd9688d9b2f8eb737,
            0x219b7e47a11c835e, 0x00d5211f7aba3a1e, 0xeea11039d26bae37, 0x8193012e994eac09,
            0x64019743ddd2f652, 0x2410b617b5c73fda, 0x85e5e480cd5aadfc, 0x37fd16ebd1802190,
            0x03394b7ca3072fca, 0x84ed7c21290ed3f3, 0x0cdebc7a765a56e4, 0xa57dc7c9a983551f,
            0xd885b9d042c5f5bf, 0x7f6b05ab76afa832, 0x8187c01bfa9a4fc3, 0x0ef9833f6a0a3f25,
            0x59dbd86317cecb50, 0x7293421f4d4e3852, 0xcb5cceb423cf90d5, 0x341ade3195244fc4,
            0x66d6afcd84ea33f2, 0xa793e7fe2a07abd3, 0x6c8a64b4dd8a46e1, 0xe373bd0032102eec,
            0xec0619b0ee66b7a9, 0xde8aa9696c100e0f, 0xa61dc1b0a5465bd3, 0x388486e7cf08a133,
            0x93b87b4a5aab1cb6, 0x63de0af2607885cf, 0x1115642b997b2c67, 0x6da293fb18d37054,
            0xfc9562c3091f55b7, 0x9b7e5961cb414813, 0x73df1642e2a23995, 0x073a4ae23f556051,
            0x27797b39e0382235, 0x627338ea43b2a45d, 0x7dcd37d60133ba8b, 0xf7fc05accfd993dc,
            0xd9ee88a87ff45726, 0x8bb88317f1dee5a4, 0xc4d38653f3b17db5, 0xcf946b8dc94bd4b1,
            0x932dec02ff9f7113, 0x3c205523d9235a7c, 0x62188a01fc599ee8, 0x64cdf534fb3cda6c,
            0x3aa1ddb8e242d766, 0x3ee79b70f426951e, 0xa26bde22e25bd883, 0x7a5d9e364cf83c54,
            0xf78edf51ececafb5, 0x2b2a00c1f3ba4a43, 0x77167bf3be13f027, 0x88c5bacb2698ccc0,
        ];
        let mut r = SimRng::seed_from_u64(42);
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(r.next_u64(), e, "draw {i}");
        }
    }

    /// The 53-bit float conversion and Lemire bounded sampling, pinned
    /// against the original `rand` 0.8 `gen::<f64>()` / `gen_range`.
    #[test]
    fn golden_seed42_derived_draws() {
        let mut r = SimRng::seed_from_u64(42);
        let f: Vec<f64> = (0..4).map(|_| r.f64()).collect();
        assert_eq!(
            f,
            [
                0.5265574090027738,
                0.5427252099031439,
                0.6364650991438949,
                0.4059017582307767
            ]
        );
        let mut r = SimRng::seed_from_u64(42);
        let d: Vec<u64> = (0..16).map(|_| r.below(10)).collect();
        assert_eq!(d, [5, 5, 6, 4, 0, 4, 7, 8, 1, 0, 9, 5, 1, 5, 2, 0]);
    }

    /// `next_u64` straddling a buffer refill must splice the last word
    /// of one buffer with the first of the next (BlockRng convention).
    #[test]
    fn u64_across_refill_boundary() {
        // Consume 63 words, leaving exactly one in the buffer.
        let mut a = SimRng::from_seed([0u8; 32]);
        for _ in 0..63 {
            a.next_u32();
        }
        let straddled = a.next_u64();
        // Reconstruct from a fresh generator: word 63 is the low half;
        // the high half is word 0 of the *next* refill, which a pure
        // word-counting reader would call word 64.
        let mut b = SimRng::from_seed([0u8; 32]);
        let mut all = Vec::new();
        for _ in 0..65 {
            all.push(b.next_u32());
        }
        assert_eq!(straddled, (all[63] as u64) | ((all[64] as u64) << 32));
    }

    /// `fill_bytes` consumes whole words and discards unused trailing
    /// bytes of the final word of a request.
    #[test]
    fn fill_bytes_word_granular() {
        let mut a = SimRng::from_seed([0u8; 32]);
        let mut dest = [0u8; 13];
        a.fill_bytes(&mut dest);
        // First 13 bytes of the TC1 keystream.
        assert_eq!(
            dest,
            [0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f]
        );
        // Byte 14–16 of word 3 are discarded: the next word is word 4.
        assert_eq!(a.next_u32(), 0xbbc3_2904);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_diverge() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn log_normal_positive() {
        let mut r = SimRng::seed_from_u64(19);
        for _ in 0..1_000 {
            assert!(r.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::seed_from_u64(29);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(31);
        for _ in 0..1_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
