//! Deterministic random numbers and the distribution samplers the
//! simulator needs.
//!
//! Reproducibility is a hard requirement: every figure in the paper
//! reproduction must regenerate bit-identically from a seed. `rand`'s
//! `StdRng` is documented as non-portable across releases, so we pin
//! ChaCha12 explicitly.
//!
//! The `rand_distr` crate is not in the allowed dependency set, so the
//! handful of distributions the timing models need (normal, log-normal,
//! exponential, Pareto) are implemented here from first principles.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The simulator's deterministic RNG.
///
/// A thin wrapper over ChaCha12 with the distribution samplers used by
/// the host-noise, link-fault, and workload models. Distinct subsystems
/// should derive their own stream with [`SimRng::fork`] so that adding
/// draws in one subsystem does not perturb another.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream.
    ///
    /// The child is seeded from this generator's output mixed with a
    /// caller-supplied label, so `fork(1)` and `fork(2)` diverge even
    /// when called back-to-back.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal draw via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1: f64 = 1.0 - self.f64();
        let u2: f64 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Log-normal draw parameterized by the mean/σ of the underlying
    /// normal. Produces the right-skewed tails typical of OS latency.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Exponential draw with the given mean (`mean = 1/λ`).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.f64();
        -mean * u.ln()
    }

    /// Pareto draw with scale `x_min` and shape `alpha` — heavy-tailed
    /// flow sizes and rare latency spikes.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        let u: f64 = 1.0 - self.f64();
        x_min / u.powf(1.0 / alpha)
    }

    /// Choose a uniformly random element of a slice. Panics when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_diverge() {
        let mut root = SimRng::seed_from_u64(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn log_normal_positive() {
        let mut r = SimRng::seed_from_u64(19);
        for _ in 0..1_000 {
            assert!(r.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::seed_from_u64(29);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }
}
