//! Ethernet-style frames.
//!
//! Frames are the only unit of data the simulator moves. They model
//! Ethernet II with an optional 802.1Q VLAN tag — enough structure for
//! industrial RT traffic (which is VLAN/PCP tagged layer-2) and for the
//! IT-side flows (which we carry as opaque payloads with an ethertype).

use crate::bytes::Bytes;
use std::fmt;
// steelcheck: allow(thread-outside-exec): frame-id counter; ids are used only for equality/pairing, never ordered or printed, so allocation order cannot reach any output
use std::sync::atomic::{AtomicU64, Ordering};

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Locally-administered unicast address derived from an index —
    /// convenient for auto-assigning simulated hosts.
    pub const fn local(idx: u16) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, (idx >> 8) as u8, idx as u8])
    }

    /// True for the broadcast address or any group (multicast) address.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Well-known ethertypes used across the workspace.
pub mod ethertype {
    /// IPv4 (generic IT traffic).
    pub const IPV4: u16 = 0x0800;
    /// 802.1Q VLAN tag.
    pub const VLAN: u16 = 0x8100;
    /// PROFINET-class industrial real-time traffic (our `rtnet` frames).
    pub const INDUSTRIAL_RT: u16 = 0x8892;
    /// Precision Time Protocol.
    pub const PTP: u16 = 0x88F7;
    /// Opaque simulator control/test payloads.
    pub const SIM_TEST: u16 = 0x88B5;
}

/// An 802.1Q tag: 3-bit priority code point + 12-bit VLAN id.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct VlanTag {
    /// Priority code point, 0..=7. Industrial RT traffic uses 6.
    pub pcp: u8,
    /// VLAN identifier, 0..=4095.
    pub vid: u16,
}

impl VlanTag {
    /// Tag used by cyclic industrial RT traffic (highest data priority).
    pub const RT: VlanTag = VlanTag { pcp: 6, vid: 100 };
}

/// Monotone counter giving every frame a unique identity so taps and
/// traces can correlate observations of the same frame at different
/// points in the network. Under parallel scenario execution the ids a
/// scenario draws depend on worker interleaving, which is safe because
/// ids never appear in results — only id *equality* within one
/// scenario is meaningful.
// steelcheck: allow(thread-outside-exec): process-wide id counter shared across scenario threads; consumers compare ids for equality only
static NEXT_FRAME_ID: AtomicU64 = AtomicU64::new(1);

/// Unique identity of a frame instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FrameId(pub u64);

/// An Ethernet frame in flight.
#[derive(Clone, Debug)]
pub struct EthFrame {
    /// Unique identity (preserved across hops, new on clone-and-modify).
    pub id: FrameId,
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Optional 802.1Q tag.
    pub vlan: Option<VlanTag>,
    /// Ethertype of the payload.
    pub ethertype: u16,
    /// Payload bytes (cheaply clonable).
    pub payload: Bytes,
}

/// Minimum Ethernet payload (frames are padded on the wire below this).
pub const MIN_PAYLOAD: usize = 46;
/// Ethernet header: dst(6) + src(6) + ethertype(2).
pub const ETH_HEADER: usize = 14;
/// 802.1Q tag length.
pub const VLAN_TAG_LEN: usize = 4;
/// Frame check sequence.
pub const FCS_LEN: usize = 4;
/// Preamble + SFD + inter-frame gap, charged per frame on the wire.
pub const WIRE_OVERHEAD: usize = 8 + 12;

impl EthFrame {
    /// Build a new frame with a fresh [`FrameId`].
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: u16, payload: Bytes) -> Self {
        EthFrame {
            id: FrameId(NEXT_FRAME_ID.fetch_add(1, Ordering::Relaxed)),
            dst,
            src,
            vlan: None,
            ethertype,
            payload,
        }
    }

    /// Attach an 802.1Q tag (builder style).
    pub fn with_vlan(mut self, tag: VlanTag) -> Self {
        self.vlan = Some(tag);
        self
    }

    /// Frame length on the medium excluding preamble/IFG: header +
    /// optional tag + padded payload + FCS.
    pub fn frame_len(&self) -> usize {
        let tag = if self.vlan.is_some() { VLAN_TAG_LEN } else { 0 };
        ETH_HEADER + tag + self.payload.len().max(MIN_PAYLOAD) + FCS_LEN
    }

    /// Total bytes a transmitter is busy for, including preamble, SFD
    /// and the minimum inter-frame gap.
    pub fn wire_len(&self) -> usize {
        self.frame_len() + WIRE_OVERHEAD
    }

    /// Wire occupancy in bits.
    pub fn wire_bits(&self) -> u64 {
        self.wire_len() as u64 * 8
    }

    /// PCP priority if tagged, else 0 (best effort).
    pub fn priority(&self) -> u8 {
        self.vlan.map(|t| t.pcp).unwrap_or(0)
    }

    /// Clone this frame under a fresh identity (for mirrored copies that
    /// should be distinguishable from the original in traces).
    pub fn clone_fresh(&self) -> EthFrame {
        let mut f = self.clone();
        f.id = FrameId(NEXT_FRAME_ID.fetch_add(1, Ordering::Relaxed));
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(payload_len: usize) -> EthFrame {
        EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::SIM_TEST,
            Bytes::from(vec![0u8; payload_len]),
        )
    }

    #[test]
    fn frame_ids_unique() {
        let a = mk(10);
        let b = mk(10);
        assert_ne!(a.id, b.id);
        assert_ne!(a.clone_fresh().id, a.id);
        // Plain clone preserves identity — it's the same frame.
        assert_eq!(a.clone().id, a.id);
    }

    #[test]
    fn short_payloads_padded() {
        // 20-byte industrial payload pads to the 46-byte Ethernet minimum.
        let f = mk(20);
        assert_eq!(f.frame_len(), ETH_HEADER + MIN_PAYLOAD + FCS_LEN);
        assert_eq!(f.frame_len(), 64);
    }

    #[test]
    fn long_payloads_not_padded() {
        let f = mk(1000);
        assert_eq!(f.frame_len(), ETH_HEADER + 1000 + FCS_LEN);
    }

    #[test]
    fn vlan_adds_four_bytes() {
        let f = mk(100);
        let tagged = mk(100).with_vlan(VlanTag::RT);
        assert_eq!(tagged.frame_len(), f.frame_len() + VLAN_TAG_LEN);
        assert_eq!(tagged.priority(), 6);
        assert_eq!(f.priority(), 0);
    }

    #[test]
    fn wire_len_includes_gap() {
        let f = mk(46);
        assert_eq!(f.wire_len(), 64 + WIRE_OVERHEAD);
        assert_eq!(f.wire_bits(), (64 + 20) as u64 * 8);
    }

    #[test]
    fn mac_multicast_detection() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local(5).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::local(0x0102).to_string(), "02:00:00:00:01:02");
    }
}
