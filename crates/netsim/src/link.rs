//! Point-to-point full-duplex links.
//!
//! A link connects exactly two node ports. Each direction has its own
//! transmitter state (serialization occupies the wire), propagation
//! delay, fault injector, and attached taps. Shared media are modelled
//! with switches, as in any modern Ethernet deployment.

use crate::fault::{FaultInjector, FaultSpec};
use crate::node::{NodeId, PortId};
use crate::rng::SimRng;
use crate::tap::TapId;
use crate::time::{NanoDur, Nanos};

/// Handle to a link within a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// Static parameters of a link (symmetric for both directions).
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: NanoDur,
    /// Fault model applied independently per direction.
    pub faults: FaultSpec,
}

impl LinkSpec {
    /// Gigabit Ethernet over a few metres of copper (5 ns/m ≈ 25 ns).
    pub fn gigabit() -> Self {
        LinkSpec {
            bandwidth_bps: 1_000_000_000,
            propagation: NanoDur(25),
            faults: FaultSpec::none(),
        }
    }

    /// 10G data-center link (short fiber run).
    pub fn ten_gigabit() -> Self {
        LinkSpec {
            bandwidth_bps: 10_000_000_000,
            propagation: NanoDur(50),
            faults: FaultSpec::none(),
        }
    }

    /// 100 Mbit/s industrial field-level Ethernet (PROFINET class).
    pub fn industrial_100m() -> Self {
        LinkSpec {
            bandwidth_bps: 100_000_000,
            propagation: NanoDur(25),
            faults: FaultSpec::none(),
        }
    }

    /// Override the fault model (builder style).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Override the propagation delay (builder style).
    pub fn with_propagation(mut self, propagation: NanoDur) -> Self {
        self.propagation = propagation;
        self
    }

    /// Serialization time for a frame occupying `wire_bits` on this link.
    pub fn serialization(&self, wire_bits: u64) -> NanoDur {
        NanoDur::for_bits(wire_bits, self.bandwidth_bps)
    }
}

/// One direction of a link.
#[derive(Debug)]
pub struct LinkDir {
    /// Receiving node.
    pub dst_node: NodeId,
    /// Receiving port.
    pub dst_port: PortId,
    /// Transmitter is occupied until this instant.
    pub tx_free_at: Nanos,
    /// Fault injector for this direction.
    pub faults: FaultInjector,
    /// Private RNG stream for fault decisions.
    pub rng: SimRng,
    /// Frames that completed serialization on this direction.
    pub frames_sent: u64,
}

/// A wired link: spec + per-direction state + attached taps.
#[derive(Debug)]
pub struct Link {
    /// Static parameters.
    pub spec: LinkSpec,
    /// Endpoint A (node, port).
    pub a: (NodeId, PortId),
    /// Endpoint B (node, port).
    pub b: (NodeId, PortId),
    /// Direction A→B state.
    pub a_to_b: LinkDir,
    /// Direction B→A state.
    pub b_to_a: LinkDir,
    /// Taps observing this link.
    pub taps: Vec<TapId>,
}

impl Link {
    /// Wire a link between two endpoints.
    pub fn new(
        spec: LinkSpec,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        rng_a: SimRng,
        rng_b: SimRng,
    ) -> Self {
        let faults = spec.faults.clone();
        Link {
            a,
            b,
            a_to_b: LinkDir {
                dst_node: b.0,
                dst_port: b.1,
                tx_free_at: Nanos::ZERO,
                faults: FaultInjector::new(faults.clone()),
                rng: rng_a,
                frames_sent: 0,
            },
            b_to_a: LinkDir {
                dst_node: a.0,
                dst_port: a.1,
                tx_free_at: Nanos::ZERO,
                faults: FaultInjector::new(faults),
                rng: rng_b,
                frames_sent: 0,
            },
            spec,
            taps: Vec::new(),
        }
    }

    /// The direction whose transmitter sits at `(node, port)`, if this
    /// link terminates there.
    pub fn dir_from(&mut self, node: NodeId, port: PortId) -> Option<&mut LinkDir> {
        if self.a == (node, port) {
            Some(&mut self.a_to_b)
        } else if self.b == (node, port) {
            Some(&mut self.b_to_a)
        } else {
            None
        }
    }

    /// True if the transmission originates at endpoint A.
    pub fn is_a_side(&self, node: NodeId, port: PortId) -> bool {
        self.a == (node, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_gigabit_64b() {
        // 64-byte frame + 20 bytes preamble/IFG = 672 bits → 672 ns @1G.
        let spec = LinkSpec::gigabit();
        assert_eq!(spec.serialization(672), NanoDur(672));
    }

    #[test]
    fn industrial_link_is_slower() {
        let g = LinkSpec::gigabit().serialization(672);
        let i = LinkSpec::industrial_100m().serialization(672);
        assert_eq!(i, NanoDur(6720));
        assert!(i > g);
    }

    #[test]
    fn dir_lookup() {
        let mut link = Link::new(
            LinkSpec::gigabit(),
            (NodeId(0), PortId(0)),
            (NodeId(1), PortId(2)),
            SimRng::seed_from_u64(1),
            SimRng::seed_from_u64(2),
        );
        assert_eq!(
            link.dir_from(NodeId(0), PortId(0)).unwrap().dst_node,
            NodeId(1)
        );
        assert_eq!(
            link.dir_from(NodeId(1), PortId(2)).unwrap().dst_node,
            NodeId(0)
        );
        assert!(link.dir_from(NodeId(2), PortId(0)).is_none());
        assert!(link.is_a_side(NodeId(0), PortId(0)));
        assert!(!link.is_a_side(NodeId(1), PortId(2)));
    }
}
