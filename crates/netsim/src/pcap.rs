//! pcap export — dump simulated traffic for Wireshark.
//!
//! Writes the classic libpcap format with the nanosecond-resolution
//! magic (0xA1B23C4D), link type Ethernet. Frames are re-serialized to
//! their wire layout (header, optional 802.1Q tag, padded payload) so
//! standard dissectors read them; the `INDUSTRIAL_RT` ethertype matches
//! PROFINET's, so Wireshark will even decode the cyclic frames'
//! FrameID field.

use crate::frame::{ethertype, EthFrame, MIN_PAYLOAD};
use crate::node::{Ctx, Device, PortId};
use crate::time::Nanos;
use std::io::{self, Write};

/// Nanosecond-resolution pcap magic.
const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// Link type: Ethernet.
const LINKTYPE_ETHERNET: u32 = 1;
/// Max bytes captured per record, as declared in the global header.
/// Records never include more than this; `orig_len` keeps the true
/// frame length, which is how dissectors detect truncation.
const SNAPLEN: usize = 65_535;

/// Re-serialize a frame to its on-the-wire byte layout (without FCS,
/// as real captures present it).
pub fn frame_wire_bytes(frame: &EthFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame.frame_len());
    out.extend_from_slice(&frame.dst.0);
    out.extend_from_slice(&frame.src.0);
    if let Some(tag) = frame.vlan {
        out.extend_from_slice(&ethertype::VLAN.to_be_bytes());
        let tci = ((tag.pcp as u16) << 13) | (tag.vid & 0x0FFF);
        out.extend_from_slice(&tci.to_be_bytes());
    }
    out.extend_from_slice(&frame.ethertype.to_be_bytes());
    out.extend_from_slice(&frame.payload);
    // Pad to the Ethernet minimum.
    let min = 14 + if frame.vlan.is_some() { 4 } else { 0 } + MIN_PAYLOAD;
    while out.len() < min {
        out.push(0);
    }
    out
}

/// Streams pcap records to any writer.
pub struct PcapWriter<W: Write> {
    w: W,
    records: u64,
}

impl<W: Write> std::fmt::Debug for PcapWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcapWriter")
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(&MAGIC_NS.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&(SNAPLEN as u32).to_le_bytes())?; // snaplen
        w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { w, records: 0 })
    }

    /// Append one frame observed at simulated time `ts`.
    ///
    /// Jumbo frames longer than the declared snaplen are truncated:
    /// `incl_len` and the stored data are clamped to [`SNAPLEN`], while
    /// `orig_len` records the frame's true on-the-wire length.
    pub fn write_frame(&mut self, ts: Nanos, frame: &EthFrame) -> io::Result<()> {
        let data = frame_wire_bytes(frame);
        let incl = data.len().min(SNAPLEN);
        let secs = (ts.as_nanos() / 1_000_000_000) as u32;
        let nanos = (ts.as_nanos() % 1_000_000_000) as u32;
        self.w.write_all(&secs.to_le_bytes())?;
        self.w.write_all(&nanos.to_le_bytes())?;
        self.w.write_all(&(incl as u32).to_le_bytes())?;
        self.w.write_all(&(data.len() as u32).to_le_bytes())?;
        self.w.write_all(&data[..incl])?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flush and hand back the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// A device that captures every frame it receives, with timestamps,
/// and can dump the capture as pcap — wire it to a switch mirror port
/// for a SPAN-style capture of a simulation.
#[derive(Debug)]
pub struct CaptureSink {
    name: String,
    captured: Vec<(Nanos, EthFrame)>,
}

impl CaptureSink {
    /// New empty capture.
    pub fn new(name: impl Into<String>) -> Self {
        CaptureSink {
            name: name.into(),
            captured: Vec::new(),
        }
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.captured.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.captured.is_empty()
    }

    /// The raw capture.
    pub fn frames(&self) -> &[(Nanos, EthFrame)] {
        &self.captured
    }

    /// Serialize the capture to pcap bytes.
    pub fn to_pcap(&self) -> Vec<u8> {
        // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
        let mut w = PcapWriter::new(Vec::new()).expect("vec write cannot fail");
        for (ts, frame) in &self.captured {
            // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
            w.write_frame(*ts, frame).expect("vec write cannot fail");
        }
        // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
        w.finish().expect("vec flush cannot fail")
    }

    /// Write the capture to a file.
    pub fn dump(&self, path: &std::path::Path) -> io::Result<()> {
        std::fs::write(path, self.to_pcap())
    }
}

impl Device for CaptureSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: EthFrame) {
        self.captured.push((ctx.now(), frame));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{MacAddr, VlanTag};
    use crate::bytes::Bytes;

    fn sample_frame(payload: usize, vlan: bool) -> EthFrame {
        let mut f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::INDUSTRIAL_RT,
            Bytes::from(vec![0xAB; payload]),
        );
        if vlan {
            f = f.with_vlan(VlanTag::RT);
        }
        f
    }

    /// `(secs, nanos, orig_len, captured_data)` for one pcap record.
    type PcapRecord = (u32, u32, usize, Vec<u8>);

    /// Minimal pcap reader for verification. Returns `orig_len`
    /// alongside the captured data so truncation is observable.
    fn parse_pcap(bytes: &[u8]) -> (u32, Vec<PcapRecord>) {
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let snaplen = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
        let mut records = Vec::new();
        let mut off = 24;
        while off < bytes.len() {
            let secs = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let nanos = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
            let orig = u32::from_le_bytes(bytes[off + 12..off + 16].try_into().unwrap()) as usize;
            assert!(incl <= snaplen, "incl_len must never exceed snaplen");
            assert!(incl <= orig, "captured bytes cannot exceed the original");
            let data = bytes[off + 16..off + 16 + incl].to_vec();
            records.push((secs, nanos, orig, data));
            off += 16 + incl;
        }
        (magic, records)
    }

    #[test]
    fn header_and_record_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(
            Nanos::from_secs(3) + crate::time::NanoDur(42),
            &sample_frame(46, false),
        )
        .unwrap();
        assert_eq!(w.records(), 1);
        let bytes = w.finish().unwrap();
        let (magic, recs) = parse_pcap(&bytes);
        assert_eq!(magic, MAGIC_NS);
        assert_eq!(recs.len(), 1);
        let (secs, nanos, orig, data) = &recs[0];
        assert_eq!(*secs, 3);
        assert_eq!(*nanos, 42);
        assert_eq!(*orig, data.len(), "untruncated record");
        assert_eq!(data.len(), 60, "14 header + 46 payload");
        assert_eq!(&data[0..6], &MacAddr::local(1).0);
        assert_eq!(
            u16::from_be_bytes([data[12], data[13]]),
            ethertype::INDUSTRIAL_RT
        );
    }

    #[test]
    fn vlan_tag_serialized() {
        let bytes = frame_wire_bytes(&sample_frame(46, true));
        assert_eq!(u16::from_be_bytes([bytes[12], bytes[13]]), ethertype::VLAN);
        let tci = u16::from_be_bytes([bytes[14], bytes[15]]);
        assert_eq!(tci >> 13, 6, "PCP 6");
        assert_eq!(tci & 0xFFF, 100, "VID 100");
        assert_eq!(
            u16::from_be_bytes([bytes[16], bytes[17]]),
            ethertype::INDUSTRIAL_RT
        );
    }

    #[test]
    fn short_frames_padded() {
        let bytes = frame_wire_bytes(&sample_frame(5, false));
        assert_eq!(bytes.len(), 60);
        assert!(bytes[19..].iter().all(|&b| b == 0), "padding zeroed");
    }

    #[test]
    fn jumbo_frames_clamped_to_snaplen() {
        // A payload past the 65,535-byte snaplen: the record must be
        // truncated (incl_len == snaplen) while orig_len keeps the true
        // wire length, and the stream must stay parseable after it.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let jumbo = sample_frame(70_000, false);
        w.write_frame(Nanos::from_secs(1), &jumbo).unwrap();
        w.write_frame(Nanos::from_secs(2), &sample_frame(46, false))
            .unwrap();
        let bytes = w.finish().unwrap();
        let (_, recs) = parse_pcap(&bytes);
        assert_eq!(recs.len(), 2, "records after a jumbo remain readable");
        let (_, _, orig, data) = &recs[0];
        assert_eq!(data.len(), SNAPLEN, "incl_len clamped to snaplen");
        assert_eq!(*orig, 70_000 + 14, "orig_len keeps the true length");
        // The captured prefix is the frame's real leading bytes.
        assert_eq!(&data[0..6], &MacAddr::local(1).0);
        assert!(data[20..].iter().all(|&b| b == 0xAB));
        let (_, _, orig2, data2) = &recs[1];
        assert_eq!(*orig2, data2.len(), "short frame untruncated");
    }

    #[test]
    fn capture_sink_in_simulation() {
        use crate::link::LinkSpec;
        use crate::prelude::*;
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                50,
                NanoDur::from_millis(1),
            )
            .with_limit(10),
        );
        let cap = sim.add_node(CaptureSink::new("capture"));
        sim.connect(src, PortId(0), cap, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(20));
        let sink = sim.node_ref::<CaptureSink>(cap);
        assert_eq!(sink.len(), 10);
        let pcap = sink.to_pcap();
        let (magic, recs) = parse_pcap(&pcap);
        assert_eq!(magic, MAGIC_NS);
        assert_eq!(recs.len(), 10);
        // Timestamps strictly increasing.
        let ts: Vec<u64> = recs
            .iter()
            .map(|(s, n, _, _)| *s as u64 * 1_000_000_000 + *n as u64)
            .collect();
        for w in ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
