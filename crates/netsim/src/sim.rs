//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns the clock, the event queue, every device, link and
//! tap, and the trace sink. It is strictly single-threaded and
//! deterministic: the same build order + seed produces bit-identical
//! traces on every platform.

use crate::event::{EventKind, EventQueue};
use crate::frame::EthFrame;
use crate::link::{Link, LinkId, LinkSpec};
use crate::node::{Action, Ctx, Device, NodeId, PortId};
use crate::rng::SimRng;
use crate::tap::{Tap, TapDir, TapId};
use crate::time::{NanoDur, Nanos};
use crate::trace::{DropReason, TraceEvent, TraceSink};
use crate::bytes::BytesPool;

/// Flat struct-of-arrays node storage.
///
/// Devices, RNG streams and port tables live in parallel arenas indexed
/// by `NodeId.0`. Port wiring is staged in per-node tables while the
/// world is built (wiring interleaves across nodes, so spans cannot be
/// assigned yet) and frozen into one dense `(links, rates)` table with
/// per-node `(start, len)` spans at simulation start. The dispatch and
/// transmit hot paths then index flat arrays — one cache line for the
/// span, one for the port entry — instead of chasing a per-node heap
/// allocation per lookup.
struct NodeArena {
    devices: Vec<Box<dyn Device>>,
    rngs: Vec<SimRng>,
    /// Per-node staged port tables; drained into the flat table at freeze.
    staged_links: Vec<Vec<Option<LinkId>>>,
    staged_rates: Vec<Vec<Option<u64>>>,
    /// Per-node `(start, len)` into `links`/`rates`; valid once frozen.
    spans: Vec<(u32, u32)>,
    links: Vec<Option<LinkId>>,
    rates: Vec<Option<u64>>,
    frozen: bool,
}

impl NodeArena {
    fn new() -> Self {
        NodeArena {
            devices: Vec::new(),
            rngs: Vec::new(),
            staged_links: Vec::new(),
            staged_rates: Vec::new(),
            spans: Vec::new(),
            links: Vec::new(),
            rates: Vec::new(),
            frozen: false,
        }
    }

    fn len(&self) -> usize {
        self.devices.len()
    }

    fn add(&mut self, device: Box<dyn Device>, rng: SimRng) -> NodeId {
        let id = NodeId(self.devices.len());
        self.devices.push(device);
        self.rngs.push(rng);
        self.staged_links.push(Vec::new());
        self.staged_rates.push(Vec::new());
        id
    }

    fn wire(&mut self, node: NodeId, port: PortId, link: LinkId, rate: u64) {
        assert!(
            !self.frozen,
            "cannot wire port {:?} of node {:?} ({}): topology is frozen once the simulation starts",
            port,
            node,
            self.devices[node.0].name()
        );
        let links = &mut self.staged_links[node.0];
        let rates = &mut self.staged_rates[node.0];
        if links.len() <= port.0 {
            links.resize(port.0 + 1, None);
            rates.resize(port.0 + 1, None);
        }
        assert!(
            links[port.0].is_none(),
            "port {:?} of node {:?} ({}) is already wired",
            port,
            node,
            self.devices[node.0].name()
        );
        links[port.0] = Some(link);
        rates[port.0] = Some(rate);
    }

    /// Flatten the staged per-node tables into the dense span-indexed
    /// layout. Idempotent; called once at simulation start.
    fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        let total: usize = self.staged_links.iter().map(Vec::len).sum();
        debug_assert!(total <= u32::MAX as usize, "port table index overflow");
        self.spans.reserve(self.devices.len());
        self.links.reserve(total);
        self.rates.reserve(total);
        for n in 0..self.devices.len() {
            let start = self.links.len() as u32;
            self.links.append(&mut self.staged_links[n]);
            self.rates.append(&mut self.staged_rates[n]);
            self.spans.push((start, self.links.len() as u32 - start));
        }
        self.staged_links = Vec::new();
        self.staged_rates = Vec::new();
    }

    /// Link wired to `(node, port)`, if any.
    #[inline]
    fn link_of(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        debug_assert!(self.frozen, "port tables read before freeze");
        let (s, l) = self.spans[node.0];
        if port.0 >= l as usize {
            return None;
        }
        self.links[s as usize + port.0]
    }
}

/// A complete simulated world.
pub struct Simulator {
    now: Nanos,
    queue: EventQueue,
    nodes: NodeArena,
    links: Vec<Link>,
    taps: Vec<Tap>,
    trace: TraceSink,
    rng: SimRng,
    started: bool,
    scratch: Vec<Action>,
    pool: BytesPool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("taps", &self.taps.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// A fresh world driven by the given seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: Nanos::ZERO,
            queue: EventQueue::new(),
            nodes: NodeArena::new(),
            links: Vec::new(),
            taps: Vec::new(),
            trace: TraceSink::new(),
            rng: SimRng::seed_from_u64(seed),
            started: false,
            scratch: Vec::new(),
            pool: BytesPool::new(),
        }
    }

    /// The payload buffer pool (e.g. to read hit/miss counters in
    /// tests and capacity planning).
    pub fn pool(&self) -> &BytesPool {
        &self.pool
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Add a device; returns its node id. Each device gets a private
    /// RNG stream forked from the world seed.
    pub fn add_node<D: Device>(&mut self, device: D) -> NodeId {
        let rng = self.rng.fork(self.nodes.len() as u64 + 1);
        self.nodes.add(Box::new(device), rng)
    }

    /// Wire `(a, pa)` to `(b, pb)` with the given link spec. Panics if
    /// either port is already wired — silent rewiring is always a bug.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        spec: LinkSpec,
    ) -> LinkId {
        let lid = LinkId(self.links.len());
        let rng_a = self.rng.fork(0x4C00 + lid.0 as u64);
        let rng_b = self.rng.fork(0x4D00 + lid.0 as u64);
        let bw = spec.bandwidth_bps;
        self.nodes.wire(a, pa, lid, bw);
        self.nodes.wire(b, pb, lid, bw);
        self.links
            .push(Link::new(spec, (a, pa), (b, pb), rng_a, rng_b));
        lid
    }

    /// Install a tap on a link. Returns a handle to read records later.
    pub fn attach_tap(&mut self, link: LinkId, tap: Tap) -> TapId {
        let id = TapId(self.taps.len());
        self.taps.push(tap);
        self.links[link.0].taps.push(id);
        id
    }

    /// Read a tap's records.
    pub fn tap(&self, id: TapId) -> &Tap {
        &self.taps[id.0]
    }

    /// Mutable tap access (e.g. to clear warm-up records).
    pub fn tap_mut(&mut self, id: TapId) -> &mut Tap {
        &mut self.taps[id.0]
    }

    /// The trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Enable the detailed per-frame trace log.
    pub fn record_events(&mut self, on: bool) {
        self.trace.set_record_events(on);
    }

    /// Borrow a device downcast to its concrete type.
    ///
    /// Panics if the node id is stale or the type does not match — both
    /// are programming errors in experiment code.
    pub fn node_ref<D: Device>(&self, id: NodeId) -> &D {
        (*self.nodes.devices[id.0])
            .as_any()
            .downcast_ref::<D>()
            // steelcheck: allow(unwrap-in-lib): typed-accessor API: wrong D is a caller bug by documented contract
            .expect("node type mismatch")
    }

    /// Mutable variant of [`Simulator::node_ref`].
    pub fn node_mut<D: Device>(&mut self, id: NodeId) -> &mut D {
        (*self.nodes.devices[id.0])
            .as_any_mut()
            .downcast_mut::<D>()
            // steelcheck: allow(unwrap-in-lib): typed-accessor API: wrong D is a caller bug by documented contract
            .expect("node type mismatch")
    }

    /// Schedule an externally-driven timer on a node (e.g. a failure
    /// injection at an absolute scenario time).
    pub fn inject_timer(&mut self, node: NodeId, at: Nanos, token: u64) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, EventKind::Timer { node, token });
    }

    /// Total frames the fault injectors dropped on a link (both dirs).
    pub fn link_drops(&self, link: LinkId) -> u64 {
        let l = &self.links[link.0];
        l.a_to_b.faults.dropped()
            + l.a_to_b.faults.rate_limited()
            + l.b_to_a.faults.dropped()
            + l.b_to_a.faults.rate_limited()
    }

    /// Run until the clock reaches `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: Nanos) {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let Some(ev) = self.queue.pop() else { break };
            debug_assert!(ev.at >= self.now, "time ran backwards");
            self.now = ev.at;
            match ev.kind {
                EventKind::FrameArrival { node, port, frame } => {
                    self.trace.on_delivered(TraceEvent::Delivered {
                        at: self.now,
                        node,
                        port,
                        frame: frame.id,
                    });
                    self.dispatch_frame(node, port, *frame);
                }
                EventKind::Timer { node, token } => {
                    self.trace.on_timer_fired();
                    self.dispatch_timer(node, token);
                }
            }
        }
        self.now = self.now.max(t);
    }

    /// Run for a further duration.
    pub fn run_for(&mut self, d: NanoDur) {
        self.run_until(self.now + d);
    }

    /// Run until the event queue drains completely.
    pub fn run_to_quiescence(&mut self) {
        self.start_if_needed();
        while let Some(at) = self.queue.peek_time() {
            self.run_until(at);
        }
    }

    /// Pending event count (useful for tests and liveness checks).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Freeze the staged port wiring into the dense span-indexed
        // table before any callback can read it.
        self.nodes.freeze();
        // Pre-size the hot-path scratch from topology size: a steady
        // state carries roughly a few in-flight events per link plus a
        // timer per node, and devices rarely emit more than a handful
        // of actions per callback. Reserving once here moves the
        // doubling reallocations out of the measured event loop.
        self.queue
            .reserve(2 * self.nodes.len() + 8 * self.links.len() + 16);
        if self.scratch.capacity() < 8 {
            self.scratch.reserve(8 - self.scratch.capacity());
        }
        for idx in 0..self.nodes.len() {
            let mut actions = std::mem::take(&mut self.scratch);
            {
                let (s, l) = self.nodes.spans[idx];
                let mut ctx = Ctx::new(
                    self.now,
                    NodeId(idx),
                    &mut self.nodes.rngs[idx],
                    &self.nodes.rates[s as usize..(s + l) as usize],
                    &mut actions,
                    &mut self.pool,
                );
                self.nodes.devices[idx].on_start(&mut ctx);
            }
            self.apply_actions(NodeId(idx), &mut actions);
            self.scratch = actions;
        }
    }

    fn dispatch_frame(&mut self, node: NodeId, port: PortId, frame: EthFrame) {
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let (s, l) = self.nodes.spans[node.0];
            let mut ctx = Ctx::new(
                self.now,
                node,
                &mut self.nodes.rngs[node.0],
                &self.nodes.rates[s as usize..(s + l) as usize],
                &mut actions,
                &mut self.pool,
            );
            self.nodes.devices[node.0].on_frame(&mut ctx, port, frame);
        }
        self.apply_actions(node, &mut actions);
        self.scratch = actions;
    }

    fn dispatch_timer(&mut self, node: NodeId, token: u64) {
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let (s, l) = self.nodes.spans[node.0];
            let mut ctx = Ctx::new(
                self.now,
                node,
                &mut self.nodes.rngs[node.0],
                &self.nodes.rates[s as usize..(s + l) as usize],
                &mut actions,
                &mut self.pool,
            );
            self.nodes.devices[node.0].on_timer(&mut ctx, token);
        }
        self.apply_actions(node, &mut actions);
        self.scratch = actions;
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { port, frame } => self.transmit(node, port, frame),
                Action::TimerAt { at, token } => {
                    self.queue.push(at, EventKind::Timer { node, token });
                }
            }
        }
    }

    fn transmit(&mut self, node: NodeId, port: PortId, mut frame: EthFrame) {
        let Some(lid) = self.nodes.link_of(node, port) else {
            self.trace.on_dropped(TraceEvent::Dropped {
                at: self.now,
                link: None,
                frame: frame.id,
                reason: DropReason::UnwiredPort,
            });
            return;
        };
        let link = &mut self.links[lid.0];
        let a_side = link.is_a_side(node, port);
        let prop = link.spec.propagation;
        let ser = link.spec.serialization(frame.wire_bits());
        // steelcheck: allow(unwrap-in-lib): link endpoints were validated when the link was wired
        let dir = link.dir_from(node, port).expect("wiring inconsistent");

        let start = self.now.max(dir.tx_free_at);
        let depart = start + ser;
        dir.tx_free_at = depart;
        dir.frames_sent += 1;

        self.trace.on_sent(TraceEvent::Sent {
            at: start,
            node,
            port,
            link: lid,
            frame: frame.id,
            wire_len: frame.wire_len(),
        });

        // Fate of the frame over this hop.
        let verdict = if dir.faults.is_transparent() {
            crate::fault::FaultVerdict::Deliver
        } else {
            dir.faults.judge(start, frame.wire_len(), &mut dir.rng)
        };

        use crate::fault::FaultVerdict as V;
        let mut extra = NanoDur::ZERO;
        let mut duplicate = false;
        match verdict {
            V::Drop => {
                self.trace.on_dropped(TraceEvent::Dropped {
                    at: depart,
                    link: Some(lid),
                    frame: frame.id,
                    reason: DropReason::Fault,
                });
                return;
            }
            V::Corrupt => {
                corrupt_payload(&mut frame, &mut dir.rng, &mut self.pool);
                self.trace.on_corrupted(TraceEvent::Corrupted {
                    at: depart,
                    link: lid,
                    frame: frame.id,
                });
            }
            V::Delay(d) => extra = d,
            V::Duplicate => {
                duplicate = true;
                self.trace.on_duplicated();
            }
            V::Deliver => {}
        }

        // Taps see the (possibly corrupted) frame as it passes them.
        // Indexed re-borrow per iteration instead of cloning the tap id
        // list: links and taps live in disjoint arenas, so each pass
        // borrows `self.links` immutably only long enough to read one
        // id, then mutates `self.taps` — no per-frame allocation.
        let tap_dir = if a_side { TapDir::AToB } else { TapDir::BToA };
        for ti in 0..self.links[lid.0].taps.len() {
            let tid = self.links[lid.0].taps[ti];
            let tap = &mut self.taps[tid.0];
            let frac = if a_side {
                tap.position
            } else {
                1.0 - tap.position
            };
            let at_tap = depart + prop.mul_f64(frac);
            tap.observe(at_tap, tap_dir, &frame);
        }

        let link = &self.links[lid.0];
        let dir = if a_side { &link.a_to_b } else { &link.b_to_a };
        let arrival = depart + prop + extra;
        let dst_node = dir.dst_node;
        let dst_port = dir.dst_port;
        if duplicate {
            self.queue.push(
                arrival,
                EventKind::FrameArrival {
                    node: dst_node,
                    port: dst_port,
                    frame: Box::new(frame.clone()),
                },
            );
        }
        self.queue.push(
            arrival,
            EventKind::FrameArrival {
                node: dst_node,
                port: dst_port,
                frame: Box::new(frame),
            },
        );
    }
}

fn corrupt_payload(frame: &mut EthFrame, rng: &mut SimRng, pool: &mut BytesPool) {
    if frame.payload.is_empty() {
        // Nothing to flip in the payload; damage the ethertype instead,
        // which receivers will reject just the same.
        frame.ethertype ^= 0x0001;
        return;
    }
    let idx = rng.below(frame.payload.len() as u64) as usize;
    // Flip in place when this frame holds the only reference to the
    // payload (the common case: no duplicate, no tap capture); fall
    // back to copy-on-write into a pooled buffer when shared.
    if let Some(bytes) = frame.payload.get_mut() {
        bytes[idx] ^= 0xFF;
    } else {
        let src = frame.payload.clone();
        frame.payload = pool.take_with(src.len(), |b| {
            b.copy_from_slice(&src);
            b[idx] ^= 0xFF;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::fault::FaultSpec;
    use crate::frame::{ethertype, EthFrame, MacAddr};
    use crate::node::NullDevice;

    /// Sends `count` frames of `payload_len` bytes, one per `interval`.
    struct Blaster {
        count: u64,
        sent: u64,
        payload_len: usize,
        interval: NanoDur,
    }

    impl Device for Blaster {
        fn name(&self) -> &str {
            "blaster"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.timer_in(NanoDur::ZERO, 0);
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent < self.count {
                self.sent += 1;
                let f = EthFrame::new(
                    MacAddr::local(2),
                    MacAddr::local(1),
                    ethertype::SIM_TEST,
                    Bytes::from(vec![0u8; self.payload_len]),
                );
                ctx.send(PortId(0), f);
                ctx.timer_in(self.interval, 0);
            }
        }
    }

    fn world(faults: FaultSpec) -> (Simulator, NodeId) {
        let mut sim = Simulator::new(42);
        let src = sim.add_node(Blaster {
            count: 100,
            sent: 0,
            payload_len: 46,
            interval: NanoDur::from_micros(10),
        });
        let dst = sim.add_node(NullDevice::new());
        sim.connect(
            src,
            PortId(0),
            dst,
            PortId(0),
            LinkSpec::gigabit().with_faults(faults),
        );
        (sim, dst)
    }

    #[test]
    fn frames_arrive_after_ser_plus_prop() {
        let (mut sim, dst) = world(FaultSpec::none());
        sim.run_until(Nanos::from_micros(1));
        // One 64B frame: 672 ns serialization + 25 ns propagation.
        assert_eq!(sim.trace().counters().delivered, 1);
        let _ = dst;
    }

    #[test]
    fn all_frames_delivered_on_clean_link() {
        let (mut sim, dst) = world(FaultSpec::none());
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(sim.trace().counters().sent, 100);
        assert_eq!(sim.trace().counters().delivered, 100);
        assert_eq!(sim.node_ref::<NullDevice>(dst).frames_seen(), 100);
    }

    #[test]
    fn lossy_link_drops_frames() {
        let (mut sim, dst) = world(FaultSpec::lossy(0.5));
        sim.run_until(Nanos::from_millis(2));
        let c = sim.trace().counters();
        assert_eq!(c.sent, 100);
        assert!(c.dropped > 20 && c.dropped < 80, "dropped={}", c.dropped);
        assert_eq!(c.delivered + c.dropped, 100);
        assert_eq!(sim.node_ref::<NullDevice>(dst).frames_seen(), c.delivered);
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        let run = || {
            let (mut sim, _) = world(FaultSpec::lossy(0.3));
            sim.run_until(Nanos::from_millis(2));
            sim.trace().counters()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unwired_port_drops() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(Blaster {
            count: 1,
            sent: 0,
            payload_len: 10,
            interval: NanoDur::from_micros(1),
        });
        let _ = src;
        sim.run_until(Nanos::from_micros(5));
        assert_eq!(sim.trace().counters().dropped, 1);
        assert_eq!(sim.trace().counters().delivered, 0);
    }

    #[test]
    fn tap_sees_every_frame_once() {
        let mut sim = Simulator::new(7);
        let src = sim.add_node(Blaster {
            count: 10,
            sent: 0,
            payload_len: 46,
            interval: NanoDur::from_micros(10),
        });
        let dst = sim.add_node(NullDevice::new());
        let link = sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        let tap = sim.attach_tap(link, Tap::hardware_default());
        sim.run_until(Nanos::from_millis(1));
        assert_eq!(sim.tap(tap).records().len(), 10);
        // All quantized to 8 ns.
        for r in sim.tap(tap).records() {
            assert_eq!(r.ts.as_nanos() % 8, 0);
        }
    }

    #[test]
    fn serialization_backpressure_queues_frames() {
        // Blast 10 frames with zero interval: they serialize back-to-back.
        let mut sim = Simulator::new(7);
        let src = sim.add_node(BurstSource { n: 10 });
        let dst = sim.add_node(NullDevice::new());
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.record_events(true);
        sim.run_until(Nanos::from_millis(1));
        // 64B+overhead = 672ns each; arrivals spaced exactly 672ns apart.
        let mut arrivals: Vec<Nanos> = sim
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Delivered { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        arrivals.sort();
        assert_eq!(arrivals.len(), 10);
        for w in arrivals.windows(2) {
            assert_eq!(w[1] - w[0], NanoDur(672));
        }
    }

    struct BurstSource {
        n: u64,
    }
    impl Device for BurstSource {
        fn name(&self) -> &str {
            "burst"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.n {
                let f = EthFrame::new(
                    MacAddr::local(2),
                    MacAddr::local(1),
                    ethertype::SIM_TEST,
                    Bytes::from(vec![0u8; 46]),
                );
                ctx.send(PortId(0), f);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {}
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(NullDevice::new());
        let b = sim.add_node(NullDevice::new());
        let c = sim.add_node(NullDevice::new());
        sim.connect(a, PortId(0), b, PortId(0), LinkSpec::gigabit());
        sim.connect(a, PortId(0), c, PortId(0), LinkSpec::gigabit());
    }

    #[test]
    fn payload_pool_recycles_on_hot_path() {
        use crate::devices::PeriodicSource;
        let mut sim = Simulator::new(9);
        let src = sim.add_node(PeriodicSource::new(
            "src",
            MacAddr::local(1),
            MacAddr::local(2),
            46,
            NanoDur::from_micros(10),
        ));
        let dst = sim.add_node(NullDevice::new());
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(1));
        // ~100 frames but only a couple of distinct in-flight buffers:
        // after the first frame is delivered and dropped, its payload
        // returns to the pool and every later frame recycles it.
        let pool = sim.pool();
        assert!(pool.hits() > 10, "hits={}", pool.hits());
        assert!(pool.misses() <= 2, "misses={}", pool.misses());
    }

    #[test]
    fn run_to_quiescence_drains() {
        let (mut sim, _) = world(FaultSpec::none());
        sim.run_to_quiescence();
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.trace().counters().delivered, 100);
    }
}
