//! Measurement containers: online moments, sample sets with exact
//! percentiles/CDFs, fixed-bucket histograms, and time-binned series.
//!
//! These are the primitives every experiment in the workspace reports
//! through — Fig. 4 needs CDFs of delay and jitter, Fig. 5 needs
//! packets-per-50-ms series, Fig. 6 needs latency means.

use crate::time::{NanoDur, Nanos};

/// Numerically stable online mean/variance/min/max (Welford).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A retained sample set with exact quantiles and CDF export.
///
/// Keeps every sample (the experiments here collect 10⁴–10⁶ points,
/// comfortably in memory) so the reported percentiles are exact rather
/// than sketched — worst-case latency/jitter is a headline OT metric
/// and must not be approximated away.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Empty set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Add a duration observation in nanoseconds.
    pub fn push_dur(&mut self, d: NanoDur) {
        self.push(d.as_nanos() as f64);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp gives NaNs a defined position instead of a panic,
            // keeping the sort deterministic on any input.
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Exact quantile by the nearest-rank convention: the smallest
    /// sample whose cumulative probability is `>= q`, i.e. sorted index
    /// `ceil(q * n) - 1`. Consequences the tests pin down: `q = 0`
    /// and any `q <= 1/n` return the minimum, `q = 1` the maximum, and
    /// a single-sample set returns that sample for every `q`. Out-of-
    /// range `q` clamps to `[0, 1]`; NaN is rejected. `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(!q.is_nan(), "quantile probability must not be NaN");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Median shorthand.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest observation.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Largest observation (worst case).
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Empirical CDF downsampled to at most `points` evenly spaced
    /// probability steps: returns `(value, P(X <= value))` pairs.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let steps = points.min(n);
        let mut out = Vec::with_capacity(steps);
        for k in 1..=steps {
            let idx = (k * n).div_ceil(steps) - 1;
            out.push((self.samples[idx], (idx + 1) as f64 / n as f64));
        }
        out
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn raw(&self) -> &[f64] {
        &self.samples
    }
}

/// Fixed-width bucket histogram over `[lo, hi)` with overflow/underflow
/// counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    total: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo && buckets > 0, "invalid histogram bounds");
        Histogram {
            lo,
            width: (hi - lo) / buckets as f64,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            nan: 0,
            total: 0,
        }
    }

    /// Record an observation. NaN observations are counted separately —
    /// a NaN compares false against every bound, so without the
    /// explicit check it would fall through the index arithmetic into
    /// bucket 0 and silently skew the distribution.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            if idx >= self.counts.len() {
                self.overflow += 1;
            } else {
                self.counts[idx] += 1;
            }
        }
    }

    /// Total observations including under/overflow and NaN.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations outside the bucketed range (including NaN).
    pub fn out_of_range(&self) -> u64 {
        self.underflow + self.overflow + self.nan
    }

    /// NaN observations recorded.
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Iterate `(bucket_midpoint, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c))
    }
}

/// Events-per-bin time series — e.g. "packets per 50 ms" in Fig. 5.
#[derive(Clone, Debug)]
pub struct BinnedSeries {
    bin: NanoDur,
    counts: Vec<u64>,
}

impl BinnedSeries {
    /// A series with the given bin width.
    pub fn new(bin: NanoDur) -> Self {
        assert!(bin.as_nanos() > 0, "bin width must be positive");
        BinnedSeries {
            bin,
            counts: Vec::new(),
        }
    }

    /// Record one event at instant `t`.
    pub fn record(&mut self, t: Nanos) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Extend the series with empty bins up to instant `t` so quiet
    /// tails appear as zeros instead of a truncated series.
    pub fn extend_to(&mut self, t: Nanos) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
    }

    /// Bin width.
    pub fn bin(&self) -> NanoDur {
        self.bin
    }

    /// `(bin_start_time, count)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (Nanos, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (Nanos(i as u64 * self.bin.as_nanos()), c))
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Format a nanosecond quantity with an auto-scaled unit — the shared
/// rendering for every timing table the workspace prints (bench
/// harness rows, the load generator's latency report).
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Nearest-rank quantile over an **already-sorted** slice by the bench
/// harness convention `sorted[round((n-1) * p)]`. `None` when empty.
///
/// [`SampleSet::quantile`] uses `ceil(q·n) − 1`; the two conventions
/// agree at the extremes but differ by one rank in between. Historical
/// `BENCH_*.json` trajectories were produced with this one, so it is
/// kept bit-for-bit for every wall-clock timing report.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = (((sorted.len() - 1) as f64) * p.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx.min(sorted.len() - 1)])
}

/// One named timing distribution summarized at the standard reporting
/// quantiles (p50/p90/p99) plus mean and range — the row format shared
/// by the serving layer's load generator and any future latency table.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileRow {
    /// Row label.
    pub name: String,
    /// Observations summarized.
    pub count: usize,
    /// Median, nanoseconds.
    pub p50_ns: f64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: f64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: f64,
    /// Mean, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observation, nanoseconds.
    pub min_ns: f64,
    /// Slowest observation, nanoseconds.
    pub max_ns: f64,
}

impl QuantileRow {
    /// Summarize `samples` (nanoseconds, any order) under `name`.
    /// `None` when no samples were recorded.
    pub fn from_unsorted(name: impl Into<String>, mut samples: Vec<f64>) -> Option<QuantileRow> {
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
        Some(QuantileRow {
            name: name.into(),
            count: samples.len(),
            p50_ns: quantile_sorted(&samples, 0.5)?,
            p90_ns: quantile_sorted(&samples, 0.9)?,
            p99_ns: quantile_sorted(&samples, 0.99)?,
            mean_ns: mean,
            min_ns: quantile_sorted(&samples, 0.0)?,
            max_ns: quantile_sorted(&samples, 1.0)?,
        })
    }

    /// The aligned column header matching [`QuantileRow::render`].
    pub fn header() -> String {
        format!(
            "# {:<28} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "p50", "p90", "p99", "mean", "min", "max"
        )
    }

    /// One aligned human-readable row (units auto-scaled via
    /// [`fmt_ns`]).
    pub fn render(&self) -> String {
        format!(
            "  {:<28} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            self.name,
            self.count,
            fmt_ns(self.p50_ns),
            fmt_ns(self.p90_ns),
            fmt_ns(self.p99_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.max_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        let var = xs.iter().map(|x| (x - 4.0f64).powi(2)).sum::<f64>() / 5.0;
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = SampleSet::new();
        for x in 1..=100 {
            s.push(x as f64);
        }
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut s = SampleSet::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(x);
        }
        let cdf = s.cdf(10);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_downsamples() {
        let mut s = SampleSet::new();
        for x in 0..1000 {
            s.push(x as f64);
        }
        let cdf = s.cdf(50);
        assert_eq!(cdf.len(), 50);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -1.0, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.out_of_range(), 3);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
    }

    #[test]
    fn quantile_single_sample_is_that_sample_everywhere() {
        let mut s = SampleSet::new();
        s.push(42.0);
        assert_eq!(s.quantile(0.0), Some(42.0));
        assert_eq!(s.quantile(0.5), Some(42.0));
        assert_eq!(s.quantile(1.0), Some(42.0));
    }

    #[test]
    fn quantile_edges_pin_nearest_rank_convention() {
        let mut s = SampleSet::new();
        for x in [30.0, 10.0, 20.0] {
            s.push(x);
        }
        // ceil(q*n)-1: q=0 -> min; q<=1/n -> still min; q=1 -> max.
        assert_eq!(s.quantile(0.0), Some(10.0));
        assert_eq!(s.quantile(1.0 / 3.0), Some(10.0));
        assert_eq!(s.quantile(0.34), Some(20.0));
        assert_eq!(s.quantile(1.0), Some(30.0));
        // Out-of-range probabilities clamp instead of indexing wild.
        assert_eq!(s.quantile(-3.0), Some(10.0));
        assert_eq!(s.quantile(7.0), Some(30.0));
        assert_eq!(SampleSet::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn quantile_rejects_nan_probability() {
        let mut s = SampleSet::new();
        s.push(1.0);
        let _ = s.quantile(f64::NAN);
    }

    #[test]
    fn histogram_counts_nan_explicitly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(f64::NAN);
        h.push(0.5);
        assert_eq!(h.total(), 2);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.out_of_range(), 1);
        // The NaN must not have leaked into bucket 0.
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn binned_series_rejects_zero_width_bin() {
        let _ = BinnedSeries::new(NanoDur::ZERO);
    }

    #[test]
    fn fmt_ns_golden_units() {
        assert_eq!(fmt_ns(0.0), "0 ns");
        assert_eq!(fmt_ns(999.0), "999 ns");
        assert_eq!(fmt_ns(1_000.0), "1.000 us");
        assert_eq!(fmt_ns(1_500.0), "1.500 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
        assert_eq!(fmt_ns(3.25e9), "3.250 s");
    }

    #[test]
    fn quantile_sorted_matches_harness_convention() {
        let sorted: Vec<f64> = (0..=29).map(f64::from).collect();
        // round((n-1)·p): the historical bench-harness ranks.
        assert_eq!(quantile_sorted(&sorted, 0.5), Some(15.0));
        assert_eq!(quantile_sorted(&sorted, 0.95), Some(28.0));
        assert_eq!(quantile_sorted(&sorted, 0.0), Some(0.0));
        assert_eq!(quantile_sorted(&sorted, 1.0), Some(29.0));
        assert_eq!(quantile_sorted(&sorted, 7.0), Some(29.0), "clamps");
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_row_summarizes_and_renders_golden() {
        let samples: Vec<f64> = (1..=100).rev().map(|i| (i * 1_000) as f64).collect();
        let row = QuantileRow::from_unsorted("serve/hit", samples).expect("non-empty");
        assert_eq!(row.count, 100);
        assert_eq!(row.p50_ns, 51_000.0);
        assert_eq!(row.p90_ns, 90_000.0);
        assert_eq!(row.p99_ns, 99_000.0);
        assert_eq!(row.mean_ns, 50_500.0);
        assert_eq!(row.min_ns, 1_000.0);
        assert_eq!(row.max_ns, 100_000.0);
        assert!(QuantileRow::from_unsorted("empty", Vec::new()).is_none());

        // The rendered table layout is a published format: pin it.
        assert_eq!(
            QuantileRow::header(),
            "# name                             count          p50          p90          p99         mean          min          max"
        );
        assert_eq!(
            row.render(),
            "  serve/hit                          100    51.000 us    90.000 us    99.000 us    50.500 us     1.000 us   100.000 us"
        );
    }

    #[test]
    fn binned_series_bins_correctly() {
        let mut s = BinnedSeries::new(NanoDur::from_millis(50));
        s.record(Nanos::from_millis(10)); // bin 0
        s.record(Nanos::from_millis(49)); // bin 0
        s.record(Nanos::from_millis(50)); // bin 1
        s.record(Nanos::from_millis(149)); // bin 2
        assert_eq!(s.counts(), &[2, 1, 1]);
        assert_eq!(s.total(), 4);
        s.extend_to(Nanos::from_millis(260));
        assert_eq!(s.counts().len(), 6);
        assert_eq!(s.total(), 4);
    }
}
