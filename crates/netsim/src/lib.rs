//! # steelworks-netsim
//!
//! A deterministic, event-driven network simulator built for studying
//! IT/OT convergence. It is the substrate every other crate in the
//! `steelworks` workspace runs on: industrial cyclic protocols, an
//! eBPF/XDP timing model, programmable data planes and ML traffic
//! studies all execute inside this engine.
//!
//! Design goals (in the spirit of smoltcp): simplicity, robustness, and
//! *no surprises* — a simulation is a pure function of its construction
//! order and seed, reproducible bit-for-bit on every platform. The
//! engine is single-threaded by construction; simulated time never
//! depends on wall-clock time.
//!
//! ## Model
//!
//! - [`sim::Simulator`] owns the clock, event queue, devices, links,
//!   taps and trace.
//! - Active elements implement [`node::Device`] and interact with the
//!   world only through [`node::Ctx`].
//! - [`link::LinkSpec`] models serialization + propagation; per-direction
//!   [`fault::FaultSpec`] injects drops/corruption/reordering/rate-limits.
//! - [`tap::Tap`] is a passive observer with its own finite-precision
//!   clock — the measurement instrument of the paper's Traffic
//!   Reflection method.
//!
//! ## Quick example
//!
//! ```
//! use steelworks_netsim::prelude::*;
//!
//! let mut sim = Simulator::new(42);
//! let src = sim.add_node(
//!     PeriodicSource::new("src", MacAddr::local(1), MacAddr::local(2),
//!                         46, NanoDur::from_millis(1))
//!         .with_limit(100),
//! );
//! let dst = sim.add_node(CounterSink::new("dst"));
//! sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
//! sim.run_until(Nanos::from_millis(200));
//! assert_eq!(sim.node_ref::<CounterSink>(dst).count(), 100);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytes;
pub mod devices;
pub mod event;
pub mod fault;
pub mod frame;
pub mod link;
pub mod node;
pub mod pcap;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod switch;
pub mod tap;
pub mod time;
pub mod trace;

/// Convenient glob import for simulation construction.
pub mod prelude {
    pub use crate::bytes::Bytes;
    pub use crate::devices::{
        CounterSink, EchoDevice, PeriodicSource, PoissonSource, SOURCE_STOP_TOKEN,
    };
    pub use crate::fault::FaultSpec;
    pub use crate::frame::{ethertype, EthFrame, MacAddr, VlanTag};
    pub use crate::link::{LinkId, LinkSpec};
    pub use crate::node::{Ctx, Device, NodeId, PortId};
    pub use crate::pcap::{frame_wire_bytes, CaptureSink, PcapWriter};
    pub use crate::rng::SimRng;
    pub use crate::sim::Simulator;
    pub use crate::stats::{BinnedSeries, Histogram, OnlineStats, SampleSet};
    pub use crate::switch::{LearningSwitch, SwitchConfig};
    pub use crate::tap::{Tap, TapDir, TapId};
    pub use crate::time::{NanoDur, Nanos, MS, SEC, US};
    pub use crate::trace::TraceCounters;
}
