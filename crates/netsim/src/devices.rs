//! Reusable traffic endpoints: periodic sources, echo reflectors, and
//! counting sinks. Higher crates build protocol-specific devices; these
//! cover tests, calibration and background-load generation.

use crate::frame::{ethertype, EthFrame, MacAddr, VlanTag};
use crate::node::{Ctx, Device, PortId};
use crate::stats::BinnedSeries;
use crate::time::{NanoDur, Nanos};

/// Emits one fixed-size frame per interval, optionally jittered and
/// bounded in count — the workhorse load generator.
#[derive(Debug)]
pub struct PeriodicSource {
    name: String,
    /// Destination MAC of generated frames.
    pub dst: MacAddr,
    /// Source MAC of generated frames.
    pub src: MacAddr,
    /// Payload size in bytes.
    pub payload_len: usize,
    /// Inter-frame interval.
    pub interval: NanoDur,
    /// Uniform send jitter in `[0, jitter]` added to each cycle.
    pub jitter: NanoDur,
    /// Stop after this many frames (`None` = run forever).
    pub limit: Option<u64>,
    /// Optional VLAN tag.
    pub vlan: Option<VlanTag>,
    /// Ethertype.
    pub ethertype: u16,
    /// Egress port.
    pub port: PortId,
    /// Delay before the first frame.
    pub start_offset: NanoDur,
    sent: u64,
    running: bool,
}

impl PeriodicSource {
    /// A source sending `payload_len`-byte frames every `interval`.
    pub fn new(
        name: impl Into<String>,
        src: MacAddr,
        dst: MacAddr,
        payload_len: usize,
        interval: NanoDur,
    ) -> Self {
        PeriodicSource {
            name: name.into(),
            dst,
            src,
            payload_len,
            interval,
            jitter: NanoDur::ZERO,
            limit: None,
            vlan: None,
            ethertype: ethertype::SIM_TEST,
            port: PortId(0),
            start_offset: NanoDur::ZERO,
            sent: 0,
            running: true,
        }
    }

    /// Delay the first frame (builder style) — used to phase-stagger
    /// multiple cyclic sources.
    pub fn with_start_offset(mut self, offset: NanoDur) -> Self {
        self.start_offset = offset;
        self
    }

    /// Tag generated frames (builder style).
    pub fn with_vlan(mut self, tag: VlanTag) -> Self {
        self.vlan = Some(tag);
        self
    }

    /// Bound the number of frames (builder style).
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Add uniform send jitter (builder style).
    pub fn with_jitter(mut self, jitter: NanoDur) -> Self {
        self.jitter = jitter;
        self
    }

    /// Frames emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Stop generating (takes effect at the next cycle).
    pub fn stop(&mut self) {
        self.running = false;
    }
}

/// Timer used by [`PeriodicSource`]; also reusable by external failure
/// injection: `sim.inject_timer(node, at, STOP_TOKEN)` halts the source.
pub const SOURCE_CYCLE_TOKEN: u64 = 0;
/// Injecting this token stops a [`PeriodicSource`] — crash injection.
pub const SOURCE_STOP_TOKEN: u64 = 0xDEAD;

impl Device for PeriodicSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.timer_in(self.start_offset, SOURCE_CYCLE_TOKEN);
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == SOURCE_STOP_TOKEN {
            self.running = false;
            return;
        }
        if token != SOURCE_CYCLE_TOKEN || !self.running {
            return;
        }
        if let Some(limit) = self.limit {
            if self.sent >= limit {
                return;
            }
        }
        let mut f = EthFrame::new(
            self.dst,
            self.src,
            self.ethertype,
            ctx.payload_zeroed(self.payload_len),
        );
        if let Some(tag) = self.vlan {
            f = f.with_vlan(tag);
        }
        ctx.send(self.port, f);
        self.sent += 1;
        let mut next = self.interval;
        if self.jitter.as_nanos() > 0 {
            next += NanoDur(ctx.rng().below(self.jitter.as_nanos() + 1));
        }
        ctx.timer_in(next, SOURCE_CYCLE_TOKEN);
    }
}

/// Emits frames with exponential inter-arrival times — memoryless IT
/// background traffic (requests, telemetry) to contrast with the
/// deterministic cyclic sources of OT.
#[derive(Debug)]
pub struct PoissonSource {
    name: String,
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload size in bytes.
    pub payload_len: usize,
    /// Mean inter-frame gap (1/λ).
    pub mean_gap: NanoDur,
    /// Stop after this many frames (`None` = run forever).
    pub limit: Option<u64>,
    /// Egress port.
    pub port: PortId,
    sent: u64,
}

impl PoissonSource {
    /// A Poisson source with the given mean gap.
    pub fn new(
        name: impl Into<String>,
        src: MacAddr,
        dst: MacAddr,
        payload_len: usize,
        mean_gap: NanoDur,
    ) -> Self {
        PoissonSource {
            name: name.into(),
            dst,
            src,
            payload_len,
            mean_gap,
            limit: None,
            port: PortId(0),
            sent: 0,
        }
    }

    /// Bound the number of frames (builder style).
    pub fn with_limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Frames emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Device for PoissonSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let gap = NanoDur(ctx.rng().exponential(self.mean_gap.as_nanos() as f64) as u64);
        ctx.timer_in(gap, SOURCE_CYCLE_TOKEN);
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != SOURCE_CYCLE_TOKEN {
            return;
        }
        if let Some(limit) = self.limit {
            if self.sent >= limit {
                return;
            }
        }
        self.sent += 1;
        let payload = ctx.payload_zeroed(self.payload_len);
        ctx.send(
            self.port,
            EthFrame::new(self.dst, self.src, ethertype::SIM_TEST, payload),
        );
        let gap = NanoDur(ctx.rng().exponential(self.mean_gap.as_nanos() as f64) as u64);
        ctx.timer_in(gap, SOURCE_CYCLE_TOKEN);
    }
}

/// Reflects every received frame back out the ingress port with source
/// and destination swapped, after a fixed turnaround time — a wire-level
/// ping responder used to calibrate reflection baselines.
#[derive(Debug)]
pub struct EchoDevice {
    name: String,
    /// Processing time between full reception and starting the reply.
    pub turnaround: NanoDur,
    reflected: u64,
    pending: Vec<(Nanos, PortId, EthFrame)>,
}

impl EchoDevice {
    /// An echo device with the given turnaround.
    pub fn new(name: impl Into<String>, turnaround: NanoDur) -> Self {
        EchoDevice {
            name: name.into(),
            turnaround,
            reflected: 0,
            pending: Vec::new(),
        }
    }

    /// Frames reflected so far.
    pub fn reflected(&self) -> u64 {
        self.reflected
    }
}

impl Device for EchoDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut frame: EthFrame) {
        std::mem::swap(&mut frame.src, &mut frame.dst);
        self.reflected += 1;
        if self.turnaround.as_nanos() == 0 {
            ctx.send(port, frame);
        } else {
            // Defer via self-timer; stash the frame.
            self.pending
                .push((ctx.now() + self.turnaround, port, frame));
            ctx.timer_in(self.turnaround, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let now = ctx.now();
        let mut rest = Vec::new();
        for (at, port, frame) in self.pending.drain(..) {
            if at <= now {
                ctx.send(port, frame);
            } else {
                rest.push((at, port, frame));
            }
        }
        self.pending = rest;
    }
}

/// Counts and time-stamps every arriving frame; optionally bins arrivals
/// into a [`BinnedSeries`] (Fig. 5's packets-per-50-ms view).
#[derive(Debug)]
pub struct CounterSink {
    name: String,
    arrivals: Vec<Nanos>,
    series: Option<BinnedSeries>,
}

impl CounterSink {
    /// A sink recording raw arrival timestamps.
    pub fn new(name: impl Into<String>) -> Self {
        CounterSink {
            name: name.into(),
            arrivals: Vec::new(),
            series: None,
        }
    }

    /// Also bin arrivals with the given bin width.
    pub fn with_series(mut self, bin: NanoDur) -> Self {
        self.series = Some(BinnedSeries::new(bin));
        self
    }

    /// Number of frames received.
    pub fn count(&self) -> u64 {
        self.arrivals.len() as u64
    }

    /// Raw arrival instants.
    pub fn arrivals(&self) -> &[Nanos] {
        &self.arrivals
    }

    /// Inter-arrival gaps.
    pub fn inter_arrivals(&self) -> Vec<NanoDur> {
        self.arrivals.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The binned series if configured.
    pub fn series(&self) -> Option<&BinnedSeries> {
        self.series.as_ref()
    }
}

impl Device for CounterSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _frame: EthFrame) {
        self.arrivals.push(ctx.now());
        if let Some(series) = &mut self.series {
            series.record(ctx.now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;

    #[test]
    fn periodic_source_paces_frames() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(100),
            )
            .with_limit(50),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(10));
        let sink = sim.node_ref::<CounterSink>(dst);
        assert_eq!(sink.count(), 50);
        for gap in sink.inter_arrivals() {
            assert_eq!(gap, NanoDur::from_micros(100));
        }
    }

    #[test]
    fn jittered_source_varies_gaps() {
        let mut sim = Simulator::new(2);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(100),
            )
            .with_limit(100)
            .with_jitter(NanoDur::from_micros(20)),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(20));
        let gaps = sim.node_ref::<CounterSink>(dst).inter_arrivals();
        let distinct: std::collections::BTreeSet<u64> = gaps.iter().map(|g| g.as_nanos()).collect();
        assert!(
            distinct.len() > 5,
            "jitter produced {} gaps",
            distinct.len()
        );
        for g in &gaps {
            assert!(*g >= NanoDur::from_micros(100));
            assert!(*g <= NanoDur::from_micros(120));
        }
    }

    #[test]
    fn stop_token_halts_source() {
        let mut sim = Simulator::new(3);
        let src = sim.add_node(PeriodicSource::new(
            "src",
            MacAddr::local(1),
            MacAddr::local(2),
            46,
            NanoDur::from_micros(100),
        ));
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.inject_timer(src, Nanos::from_micros(450), SOURCE_STOP_TOKEN);
        sim.run_until(Nanos::from_millis(5));
        // Frames at t=0,100,200,300,400 then stopped.
        assert_eq!(sim.node_ref::<CounterSink>(dst).count(), 5);
    }

    #[test]
    fn poisson_source_rate_and_variability() {
        let mut sim = Simulator::new(9);
        let src = sim.add_node(
            PoissonSource::new(
                "poisson",
                MacAddr::local(1),
                MacAddr::local(2),
                100,
                NanoDur::from_micros(100),
            )
            .with_limit(2_000),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_to_quiescence();
        let sink = sim.node_ref::<CounterSink>(dst);
        assert_eq!(sink.count(), 2_000);
        let gaps = sink.inter_arrivals();
        let mean = gaps.iter().map(|g| g.as_nanos() as f64).sum::<f64>() / gaps.len() as f64;
        assert!((mean - 100_000.0).abs() < 8_000.0, "mean gap {mean}");
        // Memoryless arrivals: CV of gaps ≈ 1 (deterministic would be 0).
        let var = gaps
            .iter()
            .map(|g| (g.as_nanos() as f64 - mean).powi(2))
            .sum::<f64>()
            / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.8 && cv < 1.2, "cv = {cv}");
    }

    #[test]
    fn echo_reflects_with_turnaround() {
        let mut sim = Simulator::new(4);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_micros(50),
            )
            .with_limit(10),
        );
        let echo = sim.add_node(EchoDevice::new("echo", NanoDur::from_micros(5)));
        sim.connect(src, PortId(0), echo, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(2));
        assert_eq!(sim.node_ref::<EchoDevice>(echo).reflected(), 10);
        // Source received all reflections back.
        let c = sim.trace().counters();
        assert_eq!(c.delivered, 20);
    }

    #[test]
    fn counter_series_bins() {
        let mut sim = Simulator::new(5);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_millis(1),
            )
            .with_limit(100),
        );
        let dst = sim.add_node(CounterSink::new("dst").with_series(NanoDur::from_millis(50)));
        sim.connect(src, PortId(0), dst, PortId(0), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(200));
        let sink = sim.node_ref::<CounterSink>(dst);
        let series = sink.series().unwrap();
        assert_eq!(series.total(), 100);
        assert_eq!(series.counts()[0], 50);
        assert_eq!(series.counts()[1], 50);
    }
}
