//! Passive network taps.
//!
//! A tap observes every frame crossing a link, stamping it with the
//! tap's own clock. Crucially — this is the measurement argument of the
//! paper's Traffic Reflection method (§3) — *all* records from one tap
//! share a single clock, so intervals computed between two observations
//! at the same tap carry no clock-synchronization error, only the tap's
//! quantization error (8 ns for the hardware taps used in the paper).

use crate::frame::{EthFrame, FrameId, MacAddr};
use crate::time::{NanoDur, Nanos};

/// Direction of travel across the tapped link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TapDir {
    /// From the link's first endpoint (A) towards the second (B).
    AToB,
    /// From B towards A.
    BToA,
}

/// One observation.
#[derive(Clone, Debug)]
pub struct TapRecord {
    /// Timestamp from the tap's clock, quantized to its precision.
    pub ts: Nanos,
    /// Which way the frame was travelling.
    pub dir: TapDir,
    /// Identity of the observed frame.
    pub frame: FrameId,
    /// Frame length on the medium (bytes, without preamble/IFG).
    pub len: usize,
    /// Ethertype (after any VLAN tag).
    pub ethertype: u16,
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC.
    pub dst: MacAddr,
}

/// Handle to a tap installed on a link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TapId(pub usize);

/// A passive tap with its own finite-resolution clock.
#[derive(Debug)]
pub struct Tap {
    /// Position along the link, 0.0 = at endpoint A, 1.0 = at B.
    pub position: f64,
    /// Timestamp quantization step (hardware taps: 8 ns).
    pub precision: NanoDur,
    records: Vec<TapRecord>,
    /// Full-frame capture (off by default: metadata-only is cheaper).
    capture: Option<Vec<(Nanos, EthFrame)>>,
}

impl Tap {
    /// A tap at `position` with the given timestamp precision.
    pub fn new(position: f64, precision: NanoDur) -> Self {
        assert!(
            (0.0..=1.0).contains(&position),
            "tap position must be within the link"
        );
        Tap {
            position,
            precision,
            records: Vec::new(),
            capture: None,
        }
    }

    /// Also retain full frames for pcap export (builder style).
    pub fn with_payload_capture(mut self) -> Self {
        self.capture = Some(Vec::new());
        self
    }

    /// The 8 ns hardware tap used in the paper's testbed, placed at the
    /// midpoint of the link.
    pub fn hardware_default() -> Self {
        Tap::new(0.5, NanoDur(8))
    }

    /// Record one frame passing at exact time `t` (quantized on entry).
    pub fn observe(&mut self, t: Nanos, dir: TapDir, frame: &EthFrame) {
        if let Some(cap) = &mut self.capture {
            cap.push((t.quantize(self.precision), frame.clone()));
        }
        self.records.push(TapRecord {
            ts: t.quantize(self.precision),
            dir,
            frame: frame.id,
            len: frame.frame_len(),
            ethertype: frame.ethertype,
            src: frame.src,
            dst: frame.dst,
        });
    }

    /// All observations in capture order.
    pub fn records(&self) -> &[TapRecord] {
        &self.records
    }

    /// Observations travelling in one direction only.
    pub fn records_dir(&self, dir: TapDir) -> impl Iterator<Item = &TapRecord> {
        self.records.iter().filter(move |r| r.dir == dir)
    }

    /// Pair each A→B observation of a frame with the B→A observation of
    /// the *response* frame that follows it, returning round-trip times
    /// seen at this tap. This is exactly the Traffic Reflection
    /// computation: the tap sits between sender and reflector, so
    /// `out - in` is the reflector-side processing + wire time, on a
    /// single clock.
    pub fn reflection_rtts(&self) -> Vec<NanoDur> {
        let mut out = Vec::new();
        let mut pending: Option<Nanos> = None;
        for r in &self.records {
            match r.dir {
                TapDir::AToB => pending = Some(r.ts),
                TapDir::BToA => {
                    if let Some(t_in) = pending.take() {
                        out.push(r.ts.saturating_since(t_in));
                    }
                }
            }
        }
        out
    }

    /// Round-trip times paired by frame identity: for every frame seen
    /// first A→B and later B→A, the interval between the two sightings.
    /// Robust under interleaved flows (unlike [`Tap::reflection_rtts`],
    /// which assumes strict request/response alternation) because a
    /// reflector preserves the frame's identity.
    pub fn reflection_rtts_by_id(&self) -> Vec<NanoDur> {
        let mut first_seen: std::collections::BTreeMap<crate::frame::FrameId, Nanos> =
            std::collections::BTreeMap::new();
        let mut out = Vec::new();
        for r in &self.records {
            match r.dir {
                TapDir::AToB => {
                    first_seen.entry(r.frame).or_insert(r.ts);
                }
                TapDir::BToA => {
                    if let Some(t_in) = first_seen.remove(&r.frame) {
                        out.push(r.ts.saturating_since(t_in));
                    }
                }
            }
        }
        out
    }

    /// Per-source-MAC arrival filter (e.g. one flow's records).
    pub fn records_from(&self, src: MacAddr) -> impl Iterator<Item = &TapRecord> {
        self.records.iter().filter(move |r| r.src == src)
    }

    /// Serialize the payload capture as pcap bytes (requires
    /// [`Tap::with_payload_capture`]; `None` otherwise).
    pub fn to_pcap(&self) -> Option<Vec<u8>> {
        let cap = self.capture.as_ref()?;
        // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
        let mut w = crate::pcap::PcapWriter::new(Vec::new()).expect("vec write");
        for (ts, frame) in cap {
            // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
            w.write_frame(*ts, frame).expect("vec write");
        }
        // steelcheck: allow(unwrap-in-lib): Write to Vec<u8> is infallible
        Some(w.finish().expect("vec flush"))
    }

    /// Discard all records (e.g. after a warm-up phase).
    pub fn clear(&mut self) {
        self.records.clear();
        if let Some(cap) = &mut self.capture {
            cap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ethertype;
    use crate::bytes::Bytes;

    fn frame() -> EthFrame {
        EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::SIM_TEST,
            Bytes::from_static(&[1, 2, 3]),
        )
    }

    #[test]
    fn timestamps_quantized() {
        let mut tap = Tap::new(0.5, NanoDur(8));
        tap.observe(Nanos(1007), TapDir::AToB, &frame());
        assert_eq!(tap.records()[0].ts, Nanos(1000));
    }

    #[test]
    fn reflection_rtt_pairs_in_out() {
        let mut tap = Tap::new(0.5, NanoDur(1));
        let f1 = frame();
        let f2 = frame();
        tap.observe(Nanos(100), TapDir::AToB, &f1);
        tap.observe(Nanos(150), TapDir::BToA, &f1);
        tap.observe(Nanos(300), TapDir::AToB, &f2);
        tap.observe(Nanos(380), TapDir::BToA, &f2);
        assert_eq!(tap.reflection_rtts(), vec![NanoDur(50), NanoDur(80)]);
    }

    #[test]
    fn unmatched_responses_ignored() {
        let mut tap = Tap::new(0.5, NanoDur(1));
        let f = frame();
        tap.observe(Nanos(50), TapDir::BToA, &f); // stray response
        tap.observe(Nanos(100), TapDir::AToB, &f);
        tap.observe(Nanos(160), TapDir::BToA, &f);
        assert_eq!(tap.reflection_rtts(), vec![NanoDur(60)]);
    }

    #[test]
    fn direction_filter() {
        let mut tap = Tap::new(0.5, NanoDur(1));
        tap.observe(Nanos(1), TapDir::AToB, &frame());
        tap.observe(Nanos(2), TapDir::BToA, &frame());
        tap.observe(Nanos(3), TapDir::AToB, &frame());
        assert_eq!(tap.records_dir(TapDir::AToB).count(), 2);
        assert_eq!(tap.records_dir(TapDir::BToA).count(), 1);
    }

    #[test]
    fn payload_capture_to_pcap() {
        let mut tap = Tap::new(0.5, NanoDur(8)).with_payload_capture();
        tap.observe(Nanos(100), TapDir::AToB, &frame());
        tap.observe(Nanos(200), TapDir::BToA, &frame());
        let pcap = tap.to_pcap().expect("capture enabled");
        // Global header (24) + 2 records of (16 + 60) bytes.
        assert_eq!(pcap.len(), 24 + 2 * (16 + 60));
        // Without capture, no pcap.
        let plain = Tap::new(0.5, NanoDur(8));
        assert!(plain.to_pcap().is_none());
    }

    #[test]
    #[should_panic(expected = "within the link")]
    fn position_validated() {
        Tap::new(1.5, NanoDur(8));
    }
}
