//! Input degradation → accuracy and bitrate.
//!
//! §5: "ML inference in industrial settings can significantly suffer
//! when exposed to network-induced data degradation, such as
//! compression artifacts, frame loss, or jitter." This module provides
//! the calibrated analytic curves standing in for the paper's model
//! benchmarking (casting-defect CNNs under JPEG compression / loss):
//! accuracy as a function of degradation, bitrate as a function of
//! compression quality, and the inverse mapping (minimum quality — and
//! hence bitrate — for an accuracy target) that the ML-aware topology
//! designer consumes.

use crate::model::{MlApp, MlAppProfile};
use steelworks_netsim::time::NanoDur;

/// Degradations applied to an input stream by the network.
#[derive(Clone, Copy, Debug)]
pub struct InputDegradation {
    /// Compression quality in (0, 1]; 1 = visually lossless.
    pub quality: f64,
    /// Fraction of frames lost (0..1).
    pub frame_loss: f64,
    /// Frame-arrival jitter (late frames past deadline count as lost).
    pub jitter: NanoDur,
}

impl InputDegradation {
    /// No degradation.
    pub fn pristine() -> Self {
        InputDegradation {
            quality: 1.0,
            frame_loss: 0.0,
            jitter: NanoDur::ZERO,
        }
    }
}

/// Compressed bytes per frame at `quality`.
///
/// A standard rate model: bytes ≈ raw × (0.02 + 0.18·q²) — intra-coded
/// industrial video spans ≈2 % of raw at the lowest usable quality to
/// ≈20 % near-lossless.
pub fn frame_bytes(profile: &MlAppProfile, quality: f64) -> u64 {
    let q = quality.clamp(0.05, 1.0);
    (profile.raw_frame_bytes as f64 * (0.02 + 0.18 * q * q)).round() as u64
}

/// Offered bits/s for one client streaming at `quality`.
pub fn client_bps(profile: &MlAppProfile, quality: f64) -> f64 {
    frame_bytes(profile, quality) as f64 * 8.0 * profile.fps
}

/// Model accuracy under degradation.
///
/// Compression: logistic fall-off controlled by the app's sensitivity
/// (defect detection degrades faster — fine textures vanish first).
/// Loss/jitter: effective frame loss reduces temporal evidence
/// linearly via the app's loss sensitivity.
pub fn accuracy(profile: &MlAppProfile, d: &InputDegradation) -> f64 {
    let q = d.quality.clamp(0.0, 1.0);
    // Quality term: 1 at q=1, dropping towards ~0.5 of base at q→0.
    let s = profile.compression_sensitivity;
    let quality_factor = 1.0 / (1.0 + (-(q - 0.35) * 4.0 * s).exp());
    let quality_norm = 1.0 / (1.0 + (-(1.0 - 0.35) * 4.0 * s).exp());
    let compression_term = 0.5 + 0.5 * (quality_factor / quality_norm);

    // Jitter beyond 20% of the deadline turns into effective loss.
    let jitter_loss =
        // steelcheck: allow(float-hygiene): loss-model ratio of two closed durations; result is a fraction, not a time
        (d.jitter.as_nanos() as f64 / profile.deadline.as_nanos() as f64 - 0.2).max(0.0);
    let eff_loss = (d.frame_loss + jitter_loss).min(1.0);
    let loss_term = (1.0 - profile.loss_sensitivity * eff_loss).max(0.0);

    (profile.base_accuracy * compression_term * loss_term).clamp(0.0, 1.0)
}

/// Minimum quality achieving `target` accuracy with otherwise clean
/// delivery; `None` if unreachable even at quality 1.
pub fn min_quality_for_accuracy(profile: &MlAppProfile, target: f64) -> Option<f64> {
    let clean = |q| {
        accuracy(
            profile,
            &InputDegradation {
                quality: q,
                frame_loss: 0.0,
                jitter: NanoDur::ZERO,
            },
        )
    };
    if clean(1.0) < target {
        return None;
    }
    // Bisection: accuracy is monotone in quality.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if clean(mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The traffic profile (bps, mean packet) a client needs to hit an
/// accuracy target — the bridge into `steelworks-topo`'s designer.
pub fn traffic_for_accuracy(app: MlApp, target: f64) -> Option<(f64, u32)> {
    let profile = app.profile();
    let q = min_quality_for_accuracy(&profile, target)?;
    Some((client_bps(&profile, q), profile.mean_packet))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_input_gives_base_accuracy() {
        for app in MlApp::ALL {
            let p = app.profile();
            let a = accuracy(&p, &InputDegradation::pristine());
            assert!(
                (a - p.base_accuracy).abs() < 0.01,
                "{}: {a} vs {}",
                p.name,
                p.base_accuracy
            );
        }
    }

    #[test]
    fn accuracy_monotone_in_quality() {
        let p = MlApp::DefectDetection.profile();
        let mut last = 0.0;
        for i in 1..=20 {
            let q = i as f64 / 20.0;
            let a = accuracy(
                &p,
                &InputDegradation {
                    quality: q,
                    frame_loss: 0.0,
                    jitter: NanoDur::ZERO,
                },
            );
            assert!(a >= last, "q={q}: {a} < {last}");
            last = a;
        }
    }

    #[test]
    fn defect_detection_more_compression_sensitive() {
        let oi = MlApp::ObjectIdentification.profile();
        let dd = MlApp::DefectDetection.profile();
        let at = |p: &MlAppProfile, q: f64| {
            accuracy(
                p,
                &InputDegradation {
                    quality: q,
                    frame_loss: 0.0,
                    jitter: NanoDur::ZERO,
                },
            ) / p.base_accuracy
        };
        assert!(at(&dd, 0.3) < at(&oi, 0.3));
    }

    #[test]
    fn frame_loss_hurts() {
        let p = MlApp::ObjectIdentification.profile();
        let lossy = accuracy(
            &p,
            &InputDegradation {
                quality: 1.0,
                frame_loss: 0.2,
                jitter: NanoDur::ZERO,
            },
        );
        assert!(lossy < p.base_accuracy - 0.1);
    }

    #[test]
    fn jitter_beyond_deadline_fraction_hurts() {
        let p = MlApp::DefectDetection.profile();
        let small = accuracy(
            &p,
            &InputDegradation {
                quality: 1.0,
                frame_loss: 0.0,
                jitter: NanoDur::from_millis(10), // 12.5% of 80 ms deadline
            },
        );
        assert!((small - p.base_accuracy).abs() < 0.01, "below threshold");
        let big = accuracy(
            &p,
            &InputDegradation {
                quality: 1.0,
                frame_loss: 0.0,
                jitter: NanoDur::from_millis(40), // 50%
            },
        );
        assert!(big < p.base_accuracy - 0.2);
    }

    #[test]
    fn bitrate_grows_with_quality() {
        let p = MlApp::ObjectIdentification.profile();
        assert!(client_bps(&p, 0.3) < client_bps(&p, 0.9));
        // VGA @ 12 fps near-lossless intra ≈ 20% of raw ≈ 18 Mbit/s.
        let max = client_bps(&p, 1.0);
        assert!(max > 10e6 && max < 40e6, "bps = {max}");
    }

    #[test]
    fn min_quality_inverse_consistent() {
        for app in MlApp::ALL {
            let p = app.profile();
            for target in [0.85, 0.90, 0.93] {
                if let Some(q) = min_quality_for_accuracy(&p, target) {
                    let a = accuracy(
                        &p,
                        &InputDegradation {
                            quality: q,
                            frame_loss: 0.0,
                            jitter: NanoDur::ZERO,
                        },
                    );
                    assert!(a >= target - 1e-6, "{}: q={q} a={a}", p.name);
                    // And q is tight: slightly less misses the target.
                    if q > 0.02 {
                        let a2 = accuracy(
                            &p,
                            &InputDegradation {
                                quality: q - 0.02,
                                frame_loss: 0.0,
                                jitter: NanoDur::ZERO,
                            },
                        );
                        assert!(a2 < target + 0.01);
                    }
                }
            }
        }
    }

    #[test]
    fn unreachable_target_none() {
        let p = MlApp::DefectDetection.profile();
        assert!(min_quality_for_accuracy(&p, 0.999).is_none());
    }

    #[test]
    fn traffic_for_accuracy_tradeoff() {
        // Lower accuracy target → lower bitrate demand.
        let (low, _) = traffic_for_accuracy(MlApp::DefectDetection, 0.85).unwrap();
        let (high, _) = traffic_for_accuracy(MlApp::DefectDetection, 0.95).unwrap();
        assert!(low < high, "{low} < {high}");
    }
}
