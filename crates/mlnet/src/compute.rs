//! Inference servers: tiered compute with queueing.
//!
//! An inference server is an M/M/1-style station: clients' frames
//! arrive at `fps × clients`, service is the app's per-tier inference
//! time (with parallel worker slots). Edge/fog are "constrained" (few
//! slots), cloud is effectively unconstrained but behind a WAN — the
//! trade-off §5 says existing DC-centric designs overlook.

use crate::model::{ComputeTier, MlAppProfile};
use steelworks_netsim::time::NanoDur;

/// A provisioned inference server.
#[derive(Clone, Debug)]
pub struct InferenceServer {
    /// Tier (placement decides network distance).
    pub tier: ComputeTier,
    /// Parallel worker slots (GPU streams).
    pub slots: u32,
}

impl InferenceServer {
    /// Typical provisioning per tier.
    pub fn typical(tier: ComputeTier) -> Self {
        let slots = match tier {
            ComputeTier::Edge => 2,
            ComputeTier::Fog => 8,
            ComputeTier::Cloud => 64,
        };
        InferenceServer { tier, slots }
    }

    /// Offered utilization for `clients` streams of `profile`.
    pub fn utilization(&self, profile: &MlAppProfile, clients: u32) -> f64 {
        let arrival_per_sec = profile.fps * clients as f64;
        let service_per_sec = self.slots as f64 / profile.infer_time(self.tier).as_secs_f64();
        arrival_per_sec / service_per_sec
    }

    /// Mean response time (wait + service) for `clients` streams —
    /// M/M/c approximated as M/M/1 with aggregated service rate, capped
    /// when saturated.
    pub fn response_time(&self, profile: &MlAppProfile, clients: u32) -> NanoDur {
        let service = profile.infer_time(self.tier).as_secs_f64() / self.slots as f64;
        let rho = self.utilization(profile, clients);
        let resp = if rho >= 0.99 {
            // Saturated: report a large-but-finite penalty.
            service * 100.0
        } else {
            service / (1.0 - rho)
        };
        // Add one full service time floor (a frame can't finish faster
        // than its inference takes even with free slots).
        let floor = profile.infer_time(self.tier).as_secs_f64();
        NanoDur::from_secs_f64(resp.max(floor))
    }

    /// Largest client count this server can serve below `target_rho`.
    pub fn capacity(&self, profile: &MlAppProfile, target_rho: f64) -> u32 {
        let service_per_sec = self.slots as f64 / profile.infer_time(self.tier).as_secs_f64();
        ((target_rho * service_per_sec) / profile.fps).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MlApp;

    #[test]
    fn utilization_scales_with_clients() {
        let p = MlApp::DefectDetection.profile();
        let s = InferenceServer::typical(ComputeTier::Fog);
        assert!(s.utilization(&p, 10) < s.utilization(&p, 40));
    }

    #[test]
    fn response_grows_toward_saturation() {
        let p = MlApp::ObjectIdentification.profile();
        let s = InferenceServer::typical(ComputeTier::Edge);
        // Edge: 2 slots / 2 ms = 1000 inferences/s; 12 fps clients.
        let r10 = s.response_time(&p, 10);
        let r60 = s.response_time(&p, 60);
        let r78 = s.response_time(&p, 78);
        assert!(r10 <= r60 && r60 < r78, "{r10} {r60} {r78}");
        assert!(r10 >= p.infer_edge, "floor is one service time");
    }

    #[test]
    fn saturation_capped() {
        let p = MlApp::ObjectIdentification.profile();
        let s = InferenceServer::typical(ComputeTier::Edge);
        let r = s.response_time(&p, 400);
        assert!(r < NanoDur::from_secs(2), "finite under overload: {r}");
        assert!(s.utilization(&p, 400) > 1.0);
    }

    #[test]
    fn cloud_has_most_capacity() {
        let p = MlApp::DefectDetection.profile();
        let edge = InferenceServer::typical(ComputeTier::Edge).capacity(&p, 0.7);
        let fog = InferenceServer::typical(ComputeTier::Fog).capacity(&p, 0.7);
        let cloud = InferenceServer::typical(ComputeTier::Cloud).capacity(&p, 0.7);
        assert!(edge < fog && fog < cloud, "{edge} {fog} {cloud}");
        assert!(edge >= 4, "an edge box serves a small cell: {edge}");
    }

    #[test]
    fn capacity_matches_utilization() {
        let p = MlApp::DefectDetection.profile();
        let s = InferenceServer::typical(ComputeTier::Fog);
        let cap = s.capacity(&p, 0.7);
        assert!(s.utilization(&p, cap) <= 0.7 + 1e-9);
        assert!(s.utilization(&p, cap + 1) > 0.7);
    }
}
