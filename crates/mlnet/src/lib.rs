//! # steelworks-mlnet
//!
//! The ML-workload substrate behind §5 / Fig. 6: analytic application
//! profiles for the paper's two industrial inference tasks,
//! input-degradation→accuracy curves (compression, frame loss, jitter),
//! the bitrate-for-accuracy inverse that drives traffic-aware network
//! design, and tiered (edge/fog/cloud) inference servers with queueing.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compute;
pub mod degrade;
pub mod genai;
pub mod model;

/// Convenient glob import.
pub mod prelude {
    pub use crate::compute::InferenceServer;
    pub use crate::degrade::{
        accuracy, client_bps, frame_bytes, min_quality_for_accuracy, traffic_for_accuracy,
        InputDegradation,
    };
    pub use crate::genai::{
        placement_feasible, task_trace, LlmApp, LlmEvent, LlmProfile, LlmTaskTrace,
    };
    pub use crate::model::{ComputeTier, MlApp, MlAppProfile};
}
