//! Industrial ML application profiles.
//!
//! The two applications Fig. 6 evaluates: **object identification**
//! (robot pick verification — higher resolution, heavier model) and
//! **defect detection** (casting surface inspection à la the Kaggle
//! casting dataset the paper cites — smaller inputs, lighter model).
//! Profiles are analytic stand-ins for the real models: what matters to
//! the network study is each app's input bitrate as a function of the
//! quality its accuracy target requires, its inference times per
//! compute tier, and its service deadline.

use steelworks_netsim::time::NanoDur;

/// The evaluated applications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MlApp {
    /// Robot-cell object identification on 1080p video.
    ObjectIdentification,
    /// Casting defect detection on 512×512 grayscale stills.
    DefectDetection,
}

/// Where inference runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ComputeTier {
    /// In-cell server (shared GPU, close).
    Edge,
    /// On-prem fog aggregation (bigger GPU, one fabric away).
    Fog,
    /// Cloud region (biggest, behind a WAN).
    Cloud,
}

/// Static application profile.
#[derive(Clone, Debug)]
pub struct MlAppProfile {
    /// Display name (matches the paper's panel captions).
    pub name: &'static str,
    /// Accuracy with pristine input.
    pub base_accuracy: f64,
    /// Raw (uncompressed) bytes per frame.
    pub raw_frame_bytes: u64,
    /// Frames per second per client.
    pub fps: f64,
    /// Mean on-wire packet size (bytes) of the video/image stream.
    pub mean_packet: u32,
    /// End-to-end deadline for one inference result.
    pub deadline: NanoDur,
    /// Inference service time per tier.
    pub infer_edge: NanoDur,
    /// Fog service time.
    pub infer_fog: NanoDur,
    /// Cloud service time.
    pub infer_cloud: NanoDur,
    /// How steeply accuracy decays with compression (higher = more
    /// sensitive; calibrated per published robustness studies).
    pub compression_sensitivity: f64,
    /// Accuracy lost per 1% of dropped frames.
    pub loss_sensitivity: f64,
}

impl MlApp {
    /// The profile.
    pub fn profile(self) -> MlAppProfile {
        match self {
            // VGA color snapshots at the pick-verification rate; a
            // TensorRT-class detector.
            MlApp::ObjectIdentification => MlAppProfile {
                name: "Object Identification",
                base_accuracy: 0.95,
                raw_frame_bytes: 640 * 480 * 3,
                fps: 12.0,
                mean_packet: 1400,
                deadline: NanoDur::from_millis(50),
                infer_edge: NanoDur::from_micros(2_000),
                infer_fog: NanoDur::from_micros(1_800),
                infer_cloud: NanoDur::from_micros(1_200),
                compression_sensitivity: 2.2,
                loss_sensitivity: 0.9,
            },
            // 1 MP grayscale stills at the part rate; a lighter
            // classification CNN.
            MlApp::DefectDetection => MlAppProfile {
                name: "Defect Detection",
                base_accuracy: 0.97,
                raw_frame_bytes: 1024 * 1024,
                fps: 10.0,
                mean_packet: 1200,
                deadline: NanoDur::from_millis(80),
                infer_edge: NanoDur::from_micros(1_200),
                infer_fog: NanoDur::from_micros(1_000),
                infer_cloud: NanoDur::from_micros(800),
                compression_sensitivity: 3.0,
                loss_sensitivity: 1.3,
            },
        }
    }

    /// Both applications, in the paper's panel order.
    pub const ALL: [MlApp; 2] = [MlApp::ObjectIdentification, MlApp::DefectDetection];
}

impl MlAppProfile {
    /// Inference service time on a tier.
    pub fn infer_time(&self, tier: ComputeTier) -> NanoDur {
        match tier {
            ComputeTier::Edge => self.infer_edge,
            ComputeTier::Fog => self.infer_fog,
            ComputeTier::Cloud => self.infer_cloud,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_plausible() {
        for app in MlApp::ALL {
            let p = app.profile();
            assert!(p.base_accuracy > 0.9 && p.base_accuracy < 1.0);
            assert!(p.fps > 0.0);
            assert!(p.raw_frame_bytes > 100_000);
            assert!(p.infer_cloud < p.infer_fog);
            assert!(p.infer_fog < p.infer_edge);
        }
    }

    #[test]
    fn app_contrasts() {
        let oi = MlApp::ObjectIdentification.profile();
        let dd = MlApp::DefectDetection.profile();
        // Defect detection ships bigger stills; object identification
        // runs the heavier model under the tighter deadline.
        assert!(dd.raw_frame_bytes > oi.raw_frame_bytes);
        assert!(oi.infer_edge > dd.infer_edge);
        assert!(oi.deadline < dd.deadline, "motion task is tighter");
        assert!(oi.fps > dd.fps);
    }
}
