//! GenAI / LLM workloads on the factory floor.
//!
//! §5 closes with "the next technological leap is already knocking on
//! the door with the evolution of industrial applications of GenAI,
//! LLMs, and Agentic AI", and §1.1 lists LLMs/TLMs for factory
//! configuration and control among the future-factory ingredients. This
//! module models their network behaviour: a *bursty-then-streaming*
//! pattern (prompt upload burst, token-paced response stream) that fits
//! none of the classic flow classes — yet shares the fabric with the
//! deterministic microflows of §2.3.

use crate::model::ComputeTier;
use steelworks_netsim::rng::SimRng;
use steelworks_netsim::time::{NanoDur, Nanos};

/// Industrial LLM applications.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LlmApp {
    /// An operator copilot: interactive Q&A over manuals/diagnostics.
    FactoryCopilot,
    /// An agentic cell-configuration assistant: multi-turn tool-call
    /// loops against engineering systems (the paper's cited
    /// LLM-controls-automation line of work).
    CellConfigAgent,
    /// A tiny language model doing on-device classification/commands.
    TinyLm,
}

/// Static profile of an LLM service.
#[derive(Clone, Debug)]
pub struct LlmProfile {
    /// Display name.
    pub name: &'static str,
    /// Mean prompt size (tokens), exponential-ish.
    pub prompt_tokens: f64,
    /// Mean completion size (tokens).
    pub output_tokens: f64,
    /// Bytes per token on the wire (text + JSON/SSE framing).
    pub bytes_per_token: f64,
    /// Tool-call round trips per task (agentic loops; 0 = single shot).
    pub tool_roundtrips: f64,
    /// Time to first token per tier.
    pub ttft_edge: NanoDur,
    /// Fog TTFT.
    pub ttft_fog: NanoDur,
    /// Cloud TTFT (compute only; WAN latency is the network's problem).
    pub ttft_cloud: NanoDur,
    /// Steady decode rate (tokens/s) once streaming.
    pub tokens_per_sec: f64,
    /// Interactivity budget for the first token.
    pub ttft_deadline: NanoDur,
}

impl LlmApp {
    /// The profile.
    pub fn profile(self) -> LlmProfile {
        match self {
            LlmApp::FactoryCopilot => LlmProfile {
                name: "Factory Copilot",
                prompt_tokens: 600.0,
                output_tokens: 250.0,
                bytes_per_token: 5.0,
                tool_roundtrips: 0.0,
                ttft_edge: NanoDur::from_millis(900),
                ttft_fog: NanoDur::from_millis(450),
                ttft_cloud: NanoDur::from_millis(250),
                tokens_per_sec: 40.0,
                ttft_deadline: NanoDur::from_millis(1_500),
            },
            LlmApp::CellConfigAgent => LlmProfile {
                name: "Cell Config Agent",
                prompt_tokens: 2_500.0,
                output_tokens: 400.0,
                bytes_per_token: 5.0,
                tool_roundtrips: 6.0,
                ttft_edge: NanoDur::from_millis(1_800),
                ttft_fog: NanoDur::from_millis(800),
                ttft_cloud: NanoDur::from_millis(400),
                tokens_per_sec: 35.0,
                // Machine-facing: the budget is per whole task, but the
                // per-turn first token still gates the loop.
                ttft_deadline: NanoDur::from_millis(2_000),
            },
            LlmApp::TinyLm => LlmProfile {
                name: "Tiny LM",
                prompt_tokens: 80.0,
                output_tokens: 15.0,
                bytes_per_token: 4.0,
                tool_roundtrips: 0.0,
                ttft_edge: NanoDur::from_millis(40),
                ttft_fog: NanoDur::from_millis(25),
                ttft_cloud: NanoDur::from_millis(15),
                tokens_per_sec: 200.0,
                ttft_deadline: NanoDur::from_millis(200),
            },
        }
    }

    /// All applications.
    pub const ALL: [LlmApp; 3] = [
        LlmApp::FactoryCopilot,
        LlmApp::CellConfigAgent,
        LlmApp::TinyLm,
    ];
}

impl LlmProfile {
    /// TTFT on a tier (compute only).
    pub fn ttft(&self, tier: ComputeTier) -> NanoDur {
        match tier {
            ComputeTier::Edge => self.ttft_edge,
            ComputeTier::Fog => self.ttft_fog,
            ComputeTier::Cloud => self.ttft_cloud,
        }
    }
}

/// One network-visible event of an LLM task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LlmEvent {
    /// Client → server burst (prompt or tool result), bytes attached.
    Upstream(u32),
    /// One streamed token chunk server → client.
    TokenChunk(u32),
}

/// A generated task trace: timestamped network events for one request
/// (including agentic round trips), excluding compute/network delays —
/// the offered load, for feeding schedulers and simulators.
#[derive(Clone, Debug)]
pub struct LlmTaskTrace {
    /// (offset from task start, event).
    pub events: Vec<(Nanos, LlmEvent)>,
    /// Total upstream bytes.
    pub up_bytes: u64,
    /// Total downstream bytes.
    pub down_bytes: u64,
    /// Task duration (last event offset).
    pub duration: NanoDur,
}

/// Generate one task's offered-load trace on `tier`.
pub fn task_trace(app: LlmApp, tier: ComputeTier, rng: &mut SimRng) -> LlmTaskTrace {
    let p = app.profile();
    let turns = 1 + p.tool_roundtrips.round() as u32;
    let mut events = Vec::new();
    let mut t = Nanos::ZERO;
    let mut up = 0u64;
    let mut down = 0u64;
    for _ in 0..turns {
        let prompt = (rng.exponential(p.prompt_tokens).max(8.0) * p.bytes_per_token) as u32;
        events.push((t, LlmEvent::Upstream(prompt)));
        up += prompt as u64;
        t += p.ttft(tier);
        let out_tokens = rng.exponential(p.output_tokens).max(1.0) as u32;
        let gap = NanoDur::from_secs_f64(1.0 / p.tokens_per_sec);
        // Tokens stream in small SSE chunks (~4 tokens per packet).
        let chunk_tokens = 4u32;
        let mut sent = 0;
        while sent < out_tokens {
            let n = chunk_tokens.min(out_tokens - sent);
            let bytes = (n as f64 * p.bytes_per_token) as u32;
            events.push((t, LlmEvent::TokenChunk(bytes)));
            down += bytes as u64;
            sent += n;
            t += gap * chunk_tokens as u64;
        }
    }
    LlmTaskTrace {
        events,
        up_bytes: up,
        down_bytes: down,
        duration: t - Nanos::ZERO,
    }
}

/// Can `tier` meet the app's interactivity budget behind `network_rtt`?
/// (The placement question §5 raises: cloud compute is fastest but the
/// WAN eats the budget; edge is slow but close.)
pub fn placement_feasible(app: LlmApp, tier: ComputeTier, network_rtt: NanoDur) -> bool {
    let p = app.profile();
    p.ttft(tier) + network_rtt <= p.ttft_deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_sane() {
        for app in LlmApp::ALL {
            let p = app.profile();
            assert!(p.ttft_cloud < p.ttft_fog && p.ttft_fog < p.ttft_edge);
            assert!(p.tokens_per_sec > 0.0);
        }
    }

    #[test]
    fn trace_shape_bursty_then_streaming() {
        let mut rng = SimRng::seed_from_u64(1);
        let t = task_trace(LlmApp::FactoryCopilot, ComputeTier::Fog, &mut rng);
        assert!(matches!(t.events[0], (_, LlmEvent::Upstream(_))));
        let chunks = t
            .events
            .iter()
            .filter(|(_, e)| matches!(e, LlmEvent::TokenChunk(_)))
            .count();
        assert!(chunks >= 1);
        // Downstream dominates a copilot answer? Not necessarily —
        // but both directions carry data and the duration spans the
        // streaming, not just the burst.
        assert!(t.up_bytes > 0 && t.down_bytes > 0);
        assert!(t.duration > NanoDur::from_millis(450), "TTFT + stream");
    }

    #[test]
    fn agent_makes_multiple_round_trips() {
        let mut rng = SimRng::seed_from_u64(2);
        let t = task_trace(LlmApp::CellConfigAgent, ComputeTier::Fog, &mut rng);
        let upstreams = t
            .events
            .iter()
            .filter(|(_, e)| matches!(e, LlmEvent::Upstream(_)))
            .count();
        assert_eq!(upstreams, 7, "1 + 6 tool round trips");
        assert!(t.duration > NanoDur::from_secs(5), "agentic tasks are long");
    }

    #[test]
    fn tiny_lm_fits_at_the_edge_copilot_does_not_fit_behind_wan() {
        let wan = NanoDur::from_millis(20); // one-way 10 ms, RTT 20 ms
        let lan = NanoDur::from_micros(200);
        // TinyLM: must run at the edge and can.
        assert!(placement_feasible(LlmApp::TinyLm, ComputeTier::Edge, lan));
        // Copilot: edge compute is within budget; cloud also works
        // because interactive budgets dwarf WAN RTTs.
        assert!(placement_feasible(
            LlmApp::FactoryCopilot,
            ComputeTier::Cloud,
            wan
        ));
        // TinyLM behind the WAN: the 200 ms budget survives 20 ms RTT
        // on cloud compute, but a congested 200 ms WAN kills it.
        assert!(!placement_feasible(
            LlmApp::TinyLm,
            ComputeTier::Cloud,
            NanoDur::from_millis(200)
        ));
    }

    #[test]
    fn deterministic_traces() {
        let t1 = task_trace(
            LlmApp::CellConfigAgent,
            ComputeTier::Cloud,
            &mut SimRng::seed_from_u64(7),
        );
        let t2 = task_trace(
            LlmApp::CellConfigAgent,
            ComputeTier::Cloud,
            &mut SimRng::seed_from_u64(7),
        );
        assert_eq!(t1.events, t2.events);
    }

    #[test]
    fn streaming_pace_matches_token_rate() {
        let mut rng = SimRng::seed_from_u64(3);
        let p = LlmApp::FactoryCopilot.profile();
        let t = task_trace(LlmApp::FactoryCopilot, ComputeTier::Cloud, &mut rng);
        let chunk_times: Vec<Nanos> = t
            .events
            .iter()
            .filter_map(|(at, e)| matches!(e, LlmEvent::TokenChunk(_)).then_some(*at))
            .collect();
        if chunk_times.len() >= 2 {
            let gap = chunk_times[1] - chunk_times[0];
            let expect = NanoDur::from_secs_f64(4.0 / p.tokens_per_sec);
            assert_eq!(gap, expect);
        }
    }
}
