//! # steelworks-corpus
//!
//! The Fig. 1 analysis toolchain: permutation-aware term matching over
//! proceedings text, the thirteen term groups with their published
//! counts, a calibrated synthetic corpus (the real proceedings are
//! copyrighted), and the analyzer that produces the figure's bars. The
//! analyzer runs unchanged on a directory of real paper texts.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod matcher;
pub mod synth;
pub mod terms;

/// Convenient glob import.
pub mod prelude {
    pub use crate::analyze::{analyze, analyze_dir, research_gap, GroupCount};
    pub use crate::matcher::{compile, count_group, tokenize, CompiledTerm};
    pub use crate::synth::{generate, SynthPaper};
    pub use crate::terms::{TermGroup, GROUPS};
}
