//! The term groups of Fig. 1 and their published occurrence counts.

/// A group of related terms counted as one bar in Fig. 1.
#[derive(Clone, Debug)]
pub struct TermGroup {
    /// Bar label as printed in the figure.
    pub label: &'static str,
    /// Member terms (each a space-separated word sequence; matching
    /// handles case, plurals, hyphen/space fusion and word-order
    /// permutations).
    pub terms: &'static [&'static str],
    /// The count the paper reports for SIGCOMM'22/23 + HotNets'22/23.
    pub paper_count: u64,
}

/// All thirteen groups, in the figure's order (top = rarest).
pub const GROUPS: &[TermGroup] = &[
    TermGroup {
        label: "vPLC",
        terms: &["vplc", "virtual plc"],
        paper_count: 0,
    },
    TermGroup {
        label: "Industry 4.0/5.0",
        terms: &["industry 4.0", "industry 5.0"],
        paper_count: 1,
    },
    TermGroup {
        label: "IIoT",
        terms: &["iiot", "industrial internet of things"],
        paper_count: 1,
    },
    TermGroup {
        label: "PLC",
        terms: &["plc", "programmable logic controller"],
        paper_count: 2,
    },
    TermGroup {
        label: "Industrial Informatic",
        terms: &["industrial informatic"],
        paper_count: 4,
    },
    TermGroup {
        label: "Cyber Physical System",
        terms: &["cyber physical system"],
        paper_count: 6,
    },
    TermGroup {
        label: "IT/OT",
        terms: &["it/ot", "ot/it"],
        paper_count: 7,
    },
    TermGroup {
        label: "Industrial Network",
        terms: &["industrial network", "industrial control network"],
        paper_count: 14,
    },
    TermGroup {
        label: "PROFINET/EtherCAT/TSN",
        terms: &["profinet", "ethercat", "time sensitive networking", "tsn"],
        paper_count: 17,
    },
    TermGroup {
        label: "MQTT/OPC UA/VXLAN",
        terms: &["mqtt", "opc ua", "vxlan"],
        paper_count: 21,
    },
    TermGroup {
        label: "Datacenter",
        terms: &["datacenter", "data center"],
        paper_count: 1943,
    },
    TermGroup {
        label: "Internet",
        terms: &["internet"],
        paper_count: 2289,
    },
    TermGroup {
        label: "TCP/UDP/IPv4/IPv6",
        terms: &["tcp", "udp", "ipv4", "ipv6"],
        paper_count: 3005,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_groups_ordered_rare_to_common() {
        assert_eq!(GROUPS.len(), 13);
        for w in GROUPS.windows(2) {
            assert!(w[0].paper_count <= w[1].paper_count);
        }
    }

    #[test]
    fn research_gap_visible_in_counts() {
        // The OT-side groups together are dwarfed by any single IT term.
        let ot: u64 = GROUPS[..10].iter().map(|g| g.paper_count).sum();
        assert!(ot < 100);
        assert!(GROUPS[10].paper_count > 10 * ot);
    }
}
