//! Tokenization and permutation-aware term matching.
//!
//! Fig. 1's caption says "occurrences (with permutations)": a term like
//! "industrial network" must also count "networks, industrial",
//! "Industrial Networks", "data-center" vs "data center" vs
//! "datacenter", etc. The matcher therefore works on a normalized token
//! stream and matches every word-order permutation of a term's tokens,
//! with plural-insensitive token comparison and hyphen/space fusion.

/// Normalize raw text into matchable tokens.
///
/// Lowercases; keeps alphanumerics, `.` (for "4.0") and `/` (for
/// "it/ot"); splits hyphens into separate tokens so "data-center"
/// matches "data center".
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        let c = ch.to_ascii_lowercase();
        if c.is_ascii_alphanumeric() || c == '.' || c == '/' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    // Strip trailing periods picked up from sentence ends ("tsn.").
    for t in &mut tokens {
        while t.ends_with('.') {
            t.pop();
        }
    }
    tokens.retain(|t| !t.is_empty());
    tokens
}

/// Plural-insensitive token equality ("networks" == "network").
fn tok_eq(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let (longer, shorter) = if a.len() > b.len() { (a, b) } else { (b, a) };
    longer.len() == shorter.len() + 1 && longer.ends_with('s') && longer.starts_with(shorter)
}

/// A compiled term: its token sequence.
#[derive(Clone, Debug)]
pub struct CompiledTerm {
    tokens: Vec<String>,
    /// Fused single-token form ("datacenter" for "data center").
    fused: Option<String>,
}

/// Compile a term string ("data center") for matching.
pub fn compile(term: &str) -> CompiledTerm {
    let tokens = tokenize(term);
    let fused = if tokens.len() > 1 {
        Some(tokens.concat())
    } else {
        None
    };
    CompiledTerm { tokens, fused }
}

impl CompiledTerm {
    /// If this term matches at token position `i`, return the number of
    /// tokens consumed (1 for the fused form, n for the spelled form).
    pub fn match_at(&self, tokens: &[String], i: usize) -> Option<usize> {
        let n = self.tokens.len();
        if n == 0 || i >= tokens.len() {
            return None;
        }
        if let Some(f) = &self.fused {
            if tok_eq(&tokens[i], f) {
                return Some(1);
            }
        }
        if i + n <= tokens.len() && window_is_permutation(&self.tokens, &tokens[i..i + n]) {
            return Some(n);
        }
        None
    }

    /// Count non-overlapping occurrences of this term in a token
    /// stream, including word-order permutations of multi-word terms
    /// and the fused form.
    pub fn count(&self, tokens: &[String]) -> u64 {
        let mut count = 0;
        let mut i = 0;
        while i < tokens.len() {
            if let Some(len) = self.match_at(tokens, i) {
                count += 1;
                i += len;
            } else {
                i += 1;
            }
        }
        count
    }
}

/// Count a term *group* over a token stream: at each position, the
/// longest match of any member term counts exactly once — so a group
/// like {"datacenter", "data center"} does not double-count the fused
/// spelling against both members.
pub fn count_group_tokens(terms: &[CompiledTerm], tokens: &[String]) -> u64 {
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let best = terms.iter().filter_map(|t| t.match_at(tokens, i)).max();
        if let Some(len) = best {
            count += 1;
            i += len;
        } else {
            i += 1;
        }
    }
    count
}

/// Is `window` a permutation of `pattern` (plural-insensitive)?
fn window_is_permutation(pattern: &[String], window: &[String]) -> bool {
    if pattern.len() != window.len() {
        return false;
    }
    // Small n: greedy bipartite match suffices (n ≤ 4 in practice).
    let mut used = vec![false; window.len()];
    'outer: for p in pattern {
        for (i, w) in window.iter().enumerate() {
            if !used[i] && tok_eq(p, w) {
                used[i] = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Count a whole term group in a text (each occurrence counted once
/// even when several member terms match it).
pub fn count_group(terms: &[&str], text: &str) -> u64 {
    let tokens = tokenize(text);
    let compiled: Vec<CompiledTerm> = terms.iter().map(|t| compile(t)).collect();
    count_group_tokens(&compiled, &tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("Data-Center networks, and IT/OT!"),
            vec!["data", "center", "networks", "and", "it/ot"]
        );
        assert_eq!(tokenize("Industry 4.0."), vec!["industry", "4.0"]);
    }

    #[test]
    fn exact_match_counts() {
        let t = compile("industrial network");
        let toks = tokenize("An industrial network is an industrial network.");
        assert_eq!(t.count(&toks), 2);
    }

    #[test]
    fn plural_matches() {
        let t = compile("industrial network");
        assert_eq!(t.count(&tokenize("industrial networks everywhere")), 1);
    }

    #[test]
    fn permutation_matches() {
        let t = compile("industrial network");
        assert_eq!(t.count(&tokenize("the network, industrial by nature")), 1);
    }

    #[test]
    fn fused_and_spaced_and_hyphenated() {
        let t = compile("data center");
        assert_eq!(
            t.count(&tokenize(
                "datacenter, data center, data-center, datacenters"
            )),
            4
        );
    }

    #[test]
    fn no_overlapping_matches() {
        let t = compile("a a");
        assert_eq!(t.count(&tokenize("a a a")), 1);
    }

    #[test]
    fn near_miss_does_not_match() {
        let t = compile("industrial network");
        assert_eq!(t.count(&tokenize("industrial processes use networks")), 0);
        assert_eq!(t.count(&tokenize("the industrious network")), 0);
    }

    #[test]
    fn slash_terms() {
        let t = compile("it/ot");
        assert_eq!(t.count(&tokenize("IT/OT convergence")), 1);
        assert_eq!(t.count(&tokenize("it ot convergence")), 0);
    }

    #[test]
    fn group_counting() {
        let n = count_group(
            &["tcp", "udp"],
            "TCP over UDP beats UDP over TCP, says TCP.",
        );
        assert_eq!(n, 5);
    }

    #[test]
    fn industry_40() {
        let t = compile("industry 4.0");
        assert_eq!(t.count(&tokenize("Industry 4.0 and industry 4.0!")), 2);
        assert_eq!(t.count(&tokenize("industry 5.0")), 0);
    }
}
