//! The Fig. 1 analysis: count every term group over a corpus.

use crate::matcher::{compile, count_group_tokens, tokenize, CompiledTerm};
use crate::terms::{TermGroup, GROUPS};

/// One bar of the figure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupCount {
    /// Bar label.
    pub label: &'static str,
    /// Count measured over the supplied corpus.
    pub measured: u64,
    /// Count the paper published.
    pub published: u64,
}

/// Count all groups over an iterator of document texts.
pub fn analyze<'a, I: IntoIterator<Item = &'a str>>(docs: I) -> Vec<GroupCount> {
    // Pre-compile all terms once.
    let compiled: Vec<(&TermGroup, Vec<CompiledTerm>)> = GROUPS
        .iter()
        .map(|g| (g, g.terms.iter().map(|t| compile(t)).collect()))
        .collect();
    let mut counts = vec![0u64; GROUPS.len()];
    for doc in docs {
        let tokens = tokenize(doc);
        for (i, (_, terms)) in compiled.iter().enumerate() {
            counts[i] += count_group_tokens(terms, &tokens);
        }
    }
    compiled
        .iter()
        .zip(&counts)
        .map(|((g, _), &measured)| GroupCount {
            label: g.label,
            measured,
            published: g.paper_count,
        })
        .collect()
}

/// Analyze every `.txt` file in a directory — run the Fig. 1 tool on a
/// real proceedings corpus.
pub fn analyze_dir(dir: &std::path::Path) -> std::io::Result<Vec<GroupCount>> {
    let mut texts = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().map(|e| e == "txt").unwrap_or(false) {
            texts.push(std::fs::read_to_string(path)?);
        }
    }
    Ok(analyze(texts.iter().map(|s| s.as_str())))
}

/// The "research gap" summary the figure annotates: total OT-side
/// mentions (first ten groups) vs the smallest IT-side bar.
pub fn research_gap(counts: &[GroupCount]) -> (u64, u64) {
    let ot: u64 = counts.iter().take(10).map(|c| c.measured).sum();
    let min_it = counts
        .iter()
        .skip(10)
        .map(|c| c.measured)
        .min()
        .unwrap_or(0);
    (ot, min_it)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate;

    #[test]
    fn analyze_recovers_calibration() {
        let corpus = generate(80, 13);
        let texts: Vec<&str> = corpus.iter().map(|p| p.text.as_str()).collect();
        let counts = analyze(texts.iter().copied());
        assert_eq!(counts.len(), 13);
        for c in &counts {
            assert_eq!(c.measured, c.published, "{}", c.label);
        }
    }

    #[test]
    fn research_gap_reproduced() {
        let corpus = generate(80, 14);
        let texts: Vec<&str> = corpus.iter().map(|p| p.text.as_str()).collect();
        let counts = analyze(texts.iter().copied());
        let (ot, min_it) = research_gap(&counts);
        assert_eq!(ot, 73, "sum of the ten OT-side published counts");
        assert_eq!(min_it, 1943);
        assert!(min_it > 25 * ot);
    }

    #[test]
    fn analyze_dir_reads_txt_files() {
        let dir = std::env::temp_dir().join("steelworks-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.txt"), "The datacenter and the internet.").unwrap();
        std::fs::write(dir.join("b.txt"), "PROFINET beats TCP. Also TCP.").unwrap();
        std::fs::write(dir.join("ignored.pdf"), "tcp tcp tcp").unwrap();
        let counts = analyze_dir(&dir).unwrap();
        let get = |label: &str| {
            counts
                .iter()
                .find(|c| c.label == label)
                .map(|c| c.measured)
                .unwrap()
        };
        assert_eq!(get("Datacenter"), 1);
        assert_eq!(get("Internet"), 1);
        assert_eq!(get("PROFINET/EtherCAT/TSN"), 1);
        assert_eq!(get("TCP/UDP/IPv4/IPv6"), 2, "pdf ignored");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_corpus_all_zero() {
        let counts = analyze(std::iter::empty());
        assert!(counts.iter().all(|c| c.measured == 0));
    }
}
