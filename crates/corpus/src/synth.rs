//! Synthetic proceedings corpus, calibrated to Fig. 1.
//!
//! The real corpus (SIGCOMM'22/23 + HotNets'22/23 full texts) is
//! copyrighted, so the reproduction generates a synthetic corpus whose
//! term-group frequencies match the published counts: filler prose from
//! a networking vocabulary, with each group's terms injected the
//! published number of times using randomized surface forms (case,
//! plural, permutation, hyphenation) — precisely the variation the
//! matcher must see through. The analyzer then runs unchanged on either
//! corpus.

use crate::terms::GROUPS;
use steelworks_netsim::rng::SimRng;

/// One synthetic paper.
#[derive(Clone, Debug)]
pub struct SynthPaper {
    /// Title-ish identifier.
    pub title: String,
    /// Full text.
    pub text: String,
}

/// Filler vocabulary — deliberately free of every term-group word so
/// injected occurrences are the only matches.
const FILLER: &[&str] = &[
    "we",
    "propose",
    "novel",
    "system",
    "achieves",
    "throughput",
    "latency",
    "evaluation",
    "shows",
    "improvement",
    "over",
    "state",
    "of",
    "the",
    "art",
    "design",
    "implement",
    "kernel",
    "bypass",
    "congestion",
    "scheme",
    "flows",
    "packets",
    "measurement",
    "deployment",
    "scale",
    "hardware",
    "offload",
    "switch",
    "topology",
    "routing",
    "traffic",
    "workload",
    "bandwidth",
    "buffer",
    "queue",
    "service",
    "application",
    "model",
    "training",
    "results",
    "demonstrate",
    "significant",
    "gains",
    "across",
    "scenarios",
    "benchmark",
    "suite",
    "experiments",
    "testbed",
    "cluster",
    "fabric",
];

/// Surface-form variants for injecting a term occurrence.
fn surface_variant(term: &str, rng: &mut SimRng) -> String {
    let words: Vec<&str> = term.split(' ').collect();
    let mut out: Vec<String> = words.iter().map(|w| w.to_string()).collect();
    // Random capitalization of first letters.
    if rng.chance(0.5) {
        for w in &mut out {
            let mut c = w.chars();
            if let Some(f) = c.next() {
                *w = f.to_ascii_uppercase().to_string() + c.as_str();
            }
        }
    }
    // Plural on the last word (only for letter-final words).
    if rng.chance(0.3) {
        if let Some(last) = out.last_mut() {
            if last
                .chars()
                .last()
                .map(|c| c.is_ascii_alphabetic() && c != 's')
                .unwrap_or(false)
            {
                last.push('s');
            }
        }
    }
    if out.len() == 2 {
        let style = rng.below(4);
        match style {
            // Fused: "datacenter"
            0 => return out.concat().to_lowercase(),
            // Hyphenated.
            1 => return out.join("-"),
            // Permuted with comma: "network, industrial"
            2 => return format!("{}, {}", out[1], out[0]),
            _ => {}
        }
    }
    out.join(" ")
}

/// Generate the calibrated corpus: `n_papers` papers whose aggregate
/// term-group counts equal each group's `paper_count`.
pub fn generate(n_papers: usize, seed: u64) -> Vec<SynthPaper> {
    assert!(n_papers > 0);
    let mut rng = SimRng::seed_from_u64(seed);
    // Build per-paper filler bodies first.
    let mut papers: Vec<Vec<String>> = (0..n_papers)
        .map(|_| {
            let words = 400 + rng.below(400) as usize;
            (0..words).map(|_| rng.pick(FILLER).to_string()).collect()
        })
        .collect();

    // A term may only be injected if it does not itself contain another
    // group's term (e.g. "industrial internet of things" embeds
    // "internet" and would silently inflate the Internet bar).
    let clean_terms: Vec<Vec<&'static str>> = GROUPS
        .iter()
        .map(|group| {
            group
                .terms
                .iter()
                .copied()
                .filter(|t| {
                    GROUPS
                        .iter()
                        .filter(|other| other.label != group.label)
                        .all(|other| crate::matcher::count_group(other.terms, t) == 0)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Inject each group's occurrences at random positions in random
    // papers. IT-side terms are concentrated (every paper mentions
    // them); OT-side terms land in few papers, like reality.
    for (gi, group) in GROUPS.iter().enumerate() {
        let candidates = &clean_terms[gi];
        assert!(
            !candidates.is_empty(),
            "group {} has no self-contained term",
            group.label
        );
        for _ in 0..group.paper_count {
            let term = *rng.pick(candidates);
            let form = surface_variant(term, &mut rng);
            let paper = rng.below(n_papers as u64) as usize;
            let body = &mut papers[paper];
            let pos = rng.below(body.len() as u64 + 1) as usize;
            body.insert(pos, format!(" {form} "));
        }
    }

    papers
        .into_iter()
        .enumerate()
        .map(|(i, body)| SynthPaper {
            title: format!("synthetic-paper-{i:03}"),
            text: body.join(" "),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::count_group;

    #[test]
    fn filler_is_clean() {
        // No filler word may trigger any term group.
        let blob = FILLER.join(" ");
        for g in GROUPS {
            assert_eq!(count_group(g.terms, &blob), 0, "filler matches {}", g.label);
        }
    }

    #[test]
    fn corpus_counts_match_paper_exactly() {
        let corpus = generate(120, 42);
        let all: String = corpus
            .iter()
            .map(|p| p.text.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        for g in GROUPS {
            let measured = count_group(g.terms, &all);
            assert_eq!(
                measured, g.paper_count,
                "{}: measured {measured} vs published {}",
                g.label, g.paper_count
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(10, 7);
        let b = generate(10, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(10, 1);
        let b = generate(10, 2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.text != y.text));
    }
}
