//! The programmable switch device and its embedded control plane.
//!
//! Mirrors the InstaPLC deployment model: a DPDK-SWX-style data plane
//! (the [`crate::pipeline::Pipeline`]) plus a co-located control-plane
//! application that receives digests, manipulates tables/registers at
//! runtime, runs periodic logic (liveness scans), and may inject frames
//! of its own (e.g. a digital twin answering a connect request).

use crate::fields::{deparse, parse};
use crate::pipeline::{Digest, Pipeline};
use steelworks_netsim::frame::EthFrame;
use steelworks_netsim::node::{AsAny, Ctx, Device, PortId};
use steelworks_netsim::time::{NanoDur, Nanos};

/// Control-plane access handed to [`PipelineController`] callbacks.
#[derive(Debug)]
pub struct ControlApi<'a> {
    pipeline: &'a mut Pipeline,
    injections: &'a mut Vec<(PortId, EthFrame)>,
}

impl<'a> ControlApi<'a> {
    /// The data plane (tables, registers, counters).
    pub fn pipeline(&mut self) -> &mut Pipeline {
        self.pipeline
    }

    /// Transmit a control-plane-crafted frame out of `port` (packet-out).
    pub fn inject(&mut self, port: PortId, frame: EthFrame) {
        self.injections.push((port, frame));
    }
}

/// A control-plane application embedded with the switch.
pub trait PipelineController: AsAny + 'static {
    /// A digest arrived from the data plane.
    fn on_digest(&mut self, now: Nanos, digest: &Digest, api: &mut ControlApi<'_>);

    /// Periodic tick (armed iff [`Self::tick_interval`] is `Some`).
    fn on_tick(&mut self, _now: Nanos, _api: &mut ControlApi<'_>) {}

    /// How often to call [`Self::on_tick`].
    fn tick_interval(&self) -> Option<NanoDur> {
        None
    }
}

/// A controller that ignores everything (data plane only).
#[derive(Debug)]
pub struct NullController;

impl PipelineController for NullController {
    fn on_digest(&mut self, _now: Nanos, _digest: &Digest, _api: &mut ControlApi<'_>) {}
}

/// Aggregate switch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipeSwitchStats {
    /// Packets processed.
    pub processed: u64,
    /// Packets dropped by the pipeline.
    pub dropped: u64,
    /// Copies emitted (forwards + mirrors).
    pub emitted: u64,
    /// Digests delivered to the controller.
    pub digests: u64,
    /// Frames injected by the control plane.
    pub injected: u64,
}

impl std::fmt::Debug for PipelineSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineSwitch")
            .field("name", &self.name)
            .field("ports", &self.ports)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// The programmable switch.
pub struct PipelineSwitch {
    name: String,
    /// The data plane program.
    pub pipeline: Pipeline,
    controller: Box<dyn PipelineController>,
    ports: usize,
    /// Per-packet pipeline latency (DPDK SWX software switch class).
    pub processing_latency: NanoDur,
    pending: Vec<(Nanos, PortId, EthFrame)>,
    stats: PipeSwitchStats,
}

const TOKEN_FLUSH: u64 = 1;
const TOKEN_TICK: u64 = 2;

impl PipelineSwitch {
    /// A switch running `pipeline` with an embedded `controller`.
    pub fn new(
        name: impl Into<String>,
        ports: usize,
        pipeline: Pipeline,
        controller: Box<dyn PipelineController>,
    ) -> Self {
        PipelineSwitch {
            name: name.into(),
            pipeline,
            controller,
            ports,
            processing_latency: NanoDur(4_000),
            pending: Vec::new(),
            stats: PipeSwitchStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> PipeSwitchStats {
        self.stats
    }

    /// Borrow the controller downcast to its concrete type.
    pub fn controller_ref<T: PipelineController>(&self) -> &T {
        (*self.controller)
            .as_any()
            .downcast_ref::<T>()
            // steelcheck: allow(unwrap-in-lib): typed-accessor API: wrong T is a caller bug by documented contract
            .expect("controller type mismatch")
    }

    /// Mutable variant of [`Self::controller_ref`].
    pub fn controller_mut<T: PipelineController>(&mut self) -> &mut T {
        (*self.controller)
            .as_any_mut()
            .downcast_mut::<T>()
            // steelcheck: allow(unwrap-in-lib): typed-accessor API: wrong T is a caller bug by documented contract
            .expect("controller type mismatch")
    }

    fn deliver_digests(
        &mut self,
        now: Nanos,
        digests: &[Digest],
        out: &mut Vec<(PortId, EthFrame)>,
    ) {
        for d in digests {
            self.stats.digests += 1;
            let mut api = ControlApi {
                pipeline: &mut self.pipeline,
                injections: out,
            };
            self.controller.on_digest(now, d, &mut api);
        }
    }
}

impl Device for PipelineSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(interval) = self.controller.tick_interval() {
            ctx.timer_in(interval, TOKEN_TICK);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, ingress: PortId, frame: EthFrame) {
        let now = ctx.now();
        self.stats.processed += 1;
        let fs = parse(&frame, ingress);
        let verdict = self.pipeline.process(
            fs,
            ingress,
            now,
            self.ports,
            frame.wire_len() as u64,
            &frame.payload,
        );
        if verdict.dropped {
            self.stats.dropped += 1;
        }

        let mut injections = Vec::new();
        self.deliver_digests(now, &verdict.digests, &mut injections);

        let due = now + self.processing_latency;
        for port in verdict.egress_ports(ingress) {
            // steelcheck: allow(hot-path-alloc): per-port fan-out needs an owned frame; the payload is Arc-backed so clone is a refcount bump
            let mut out = frame.clone();
            deparse(&verdict.fields, &mut out);
            self.stats.emitted += 1;
            self.pending.push((due, port, out));
        }
        for (port, f) in injections {
            self.stats.injected += 1;
            self.pending.push((due, port, f));
        }
        if !self.pending.is_empty() {
            ctx.timer_at(due, TOKEN_FLUSH);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now();
        match token {
            TOKEN_TICK => {
                let mut injections = Vec::new();
                {
                    let mut api = ControlApi {
                        pipeline: &mut self.pipeline,
                        injections: &mut injections,
                    };
                    self.controller.on_tick(now, &mut api);
                }
                for (port, f) in injections {
                    self.stats.injected += 1;
                    self.pending.push((now, port, f));
                }
                // Flush immediately-injected frames.
                let mut rest = Vec::new();
                for (at, port, frame) in self.pending.drain(..) {
                    if at <= now {
                        ctx.send(port, frame);
                    } else {
                        rest.push((at, port, frame));
                    }
                }
                self.pending = rest;
                if let Some(interval) = self.controller.tick_interval() {
                    ctx.timer_in(interval, TOKEN_TICK);
                }
            }
            TOKEN_FLUSH => {
                let mut rest = Vec::new();
                for (at, port, frame) in self.pending.drain(..) {
                    if at <= now {
                        ctx.send(port, frame);
                    } else {
                        rest.push((at, port, frame));
                    }
                }
                self.pending = rest;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpec, Primitive};
    use crate::fields::Field;
    use crate::table::{Entry, MatchKind, TernaryKey};
    use steelworks_netsim::bytes::Bytes;
    use steelworks_netsim::prelude::*;

    /// Controller that counts digests and installs a forwarding rule on
    /// the first one.
    struct TestController {
        digests_seen: u64,
        ticks: u64,
    }

    impl PipelineController for TestController {
        fn on_digest(&mut self, _now: Nanos, digest: &Digest, api: &mut ControlApi<'_>) {
            self.digests_seen += 1;
            let t = api.pipeline().table_mut("main").expect("table exists");
            t.insert(Entry {
                keys: vec![TernaryKey::exact(digest.value)],
                priority: 0,
                action: ActionSpec::forward(PortId(1)),
            });
        }

        fn on_tick(&mut self, _now: Nanos, _api: &mut ControlApi<'_>) {
            self.ticks += 1;
        }

        fn tick_interval(&self) -> Option<NanoDur> {
            Some(NanoDur::from_millis(10))
        }
    }

    fn digest_pipeline() -> Pipeline {
        let mut p = Pipeline::new();
        p.add_table(Table::new(
            "main",
            vec![Field::EthType],
            MatchKind::Exact,
            ActionSpec::new(vec![
                Primitive::Digest {
                    kind: 1,
                    field: Field::EthType,
                },
                Primitive::Drop,
            ]),
        ));
        p
    }

    use crate::table::Table;

    #[test]
    fn digest_reaches_controller_and_reprograms() {
        let mut sim = Simulator::new(1);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_millis(1),
            )
            .with_limit(5),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        let sw = sim.add_node(PipelineSwitch::new(
            "p4",
            4,
            digest_pipeline(),
            Box::new(TestController {
                digests_seen: 0,
                ticks: 0,
            }),
        ));
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(dst, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(50));
        let switch = sim.node_ref::<PipelineSwitch>(sw);
        let ctrl = switch.controller_ref::<TestController>();
        // First packet digested + dropped; rule installed; remaining 4
        // forwarded to port 1.
        assert_eq!(ctrl.digests_seen, 1);
        assert!(ctrl.ticks >= 4);
        assert_eq!(sim.node_ref::<CounterSink>(dst).count(), 4);
        assert_eq!(switch.stats().dropped, 1);
    }

    /// Controller that injects a reply frame on every digest.
    struct Injector;

    impl PipelineController for Injector {
        fn on_digest(&mut self, _now: Nanos, digest: &Digest, api: &mut ControlApi<'_>) {
            let src = crate::fields::u64_to_mac(digest.fields.get(Field::EthSrc));
            let reply = EthFrame::new(
                src,
                MacAddr::local(0xFF),
                ethertype::SIM_TEST,
                Bytes::from_static(b"pong"),
            );
            let ingress = PortId(digest.fields.get(Field::IngressPort) as usize);
            api.inject(ingress, reply);
        }
    }

    #[test]
    fn controller_packet_out() {
        let mut sim = Simulator::new(2);
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_millis(1),
            )
            .with_limit(3),
        );
        let sw = sim.add_node(PipelineSwitch::new(
            "p4",
            2,
            digest_pipeline(),
            Box::new(Injector),
        ));
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.record_events(true);
        sim.run_until(Nanos::from_millis(20));
        // Every inbound frame produced an injected reply to the sender.
        assert_eq!(sim.node_ref::<PipelineSwitch>(sw).stats().injected, 3);
        let c = sim.trace().counters();
        assert_eq!(c.delivered, 6, "3 in + 3 replies");
    }

    #[test]
    fn processing_latency_delays_output() {
        let mut sim = Simulator::new(3);
        let mut p = Pipeline::new();
        p.add_table(Table::new(
            "fwd",
            vec![Field::EthType],
            MatchKind::Exact,
            ActionSpec::forward(PortId(1)),
        ));
        let src = sim.add_node(
            PeriodicSource::new(
                "src",
                MacAddr::local(1),
                MacAddr::local(2),
                46,
                NanoDur::from_millis(1),
            )
            .with_limit(1),
        );
        let dst = sim.add_node(CounterSink::new("dst"));
        let sw = sim.add_node(PipelineSwitch::new("p4", 2, p, Box::new(NullController)));
        sim.connect(src, PortId(0), sw, PortId(0), LinkSpec::gigabit());
        sim.connect(dst, PortId(0), sw, PortId(1), LinkSpec::gigabit());
        sim.run_until(Nanos::from_millis(5));
        let arrivals = sim.node_ref::<CounterSink>(dst).arrivals().to_vec();
        assert_eq!(arrivals.len(), 1);
        // ser(672) + prop(25) + pipeline(4000) + ser(672) + prop(25).
        assert_eq!(arrivals[0], Nanos(672 + 25 + 4000 + 672 + 25));
    }
}
