//! Match-action tables.
//!
//! Exact and ternary tables over the field vocabulary, with priorities
//! for ternary and a default action — the standard P4 table semantics
//! a control plane programs at runtime.

use crate::action::ActionSpec;
use crate::fields::{Field, FieldSet};

/// How a table matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchKind {
    /// All key fields equal.
    Exact,
    /// Masked match with priorities (higher wins).
    Ternary,
    /// Longest-prefix match on the FIRST key field (remaining fields
    /// match exactly); entry masks must be prefixes.
    Lpm,
}

/// One key component of a ternary entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TernaryKey {
    /// Value to compare after masking.
    pub value: u64,
    /// Mask (0 bits are wildcards).
    pub mask: u64,
}

impl TernaryKey {
    /// An exact-value component.
    pub fn exact(value: u64) -> Self {
        TernaryKey {
            value,
            mask: u64::MAX,
        }
    }

    /// A full wildcard.
    pub fn any() -> Self {
        TernaryKey { value: 0, mask: 0 }
    }

    /// A prefix of `len` bits (counted from the most significant bit
    /// of a `width`-bit field) — for LPM tables.
    pub fn prefix(value: u64, len: u32, width: u32) -> Self {
        assert!(len <= width && width <= 64);
        let mask = if len == 0 {
            0
        } else {
            (!0u64 >> (64 - len)) << (width - len)
        };
        TernaryKey {
            value: value & mask,
            mask,
        }
    }

    /// Number of set bits in the mask (prefix length for LPM entries).
    pub fn prefix_len(&self) -> u32 {
        self.mask.count_ones()
    }

    fn matches(&self, v: u64) -> bool {
        v & self.mask == self.value & self.mask
    }
}

/// A table entry.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Per-field keys, parallel to the table's key fields.
    pub keys: Vec<TernaryKey>,
    /// Ternary priority (ignored for exact tables).
    pub priority: i32,
    /// What to do on match.
    pub action: ActionSpec,
}

/// Handle returned by [`Table::insert`]; stable across removals.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EntryId(pub u64);

/// A match-action table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Name for control-plane addressing and reports.
    pub name: String,
    /// Key fields, in order.
    pub key: Vec<Field>,
    /// Matching discipline.
    pub kind: MatchKind,
    /// Action when nothing matches.
    pub default_action: ActionSpec,
    entries: Vec<(EntryId, Entry)>,
    next_id: u64,
    /// Lookup counters (hits, misses).
    pub hits: u64,
    /// Misses (default action taken).
    pub misses: u64,
}

impl Table {
    /// An empty table.
    pub fn new(
        name: impl Into<String>,
        key: Vec<Field>,
        kind: MatchKind,
        default_action: ActionSpec,
    ) -> Self {
        Table {
            name: name.into(),
            key,
            kind,
            default_action,
            entries: Vec::new(),
            next_id: 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Insert an entry; panics if the key arity is wrong (a control
    /// plane bug, not a runtime condition).
    pub fn insert(&mut self, entry: Entry) -> EntryId {
        assert_eq!(
            entry.keys.len(),
            self.key.len(),
            "entry key arity mismatch for table {}",
            self.name
        );
        let id = EntryId(self.next_id);
        self.next_id += 1;
        self.entries.push((id, entry));
        // Keep ternary entries ordered by priority (desc) and LPM
        // entries by prefix length (desc) so lookup is first-match.
        match self.kind {
            MatchKind::Ternary => self.entries.sort_by_key(|(_, e)| -e.priority),
            MatchKind::Lpm => self
                .entries
                .sort_by_key(|(_, e)| std::cmp::Reverse(e.keys[0].prefix_len())),
            MatchKind::Exact => {}
        }
        id
    }

    /// Remove an entry by id; returns whether it existed.
    pub fn remove(&mut self, id: EntryId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(eid, _)| *eid != id);
        self.entries.len() != before
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the action for a parsed packet.
    pub fn lookup(&mut self, fs: &FieldSet) -> &ActionSpec {
        let values: Vec<u64> = self.key.iter().map(|f| fs.get(*f)).collect();
        for (_, e) in &self.entries {
            if e.keys.iter().zip(&values).all(|(k, v)| k.matches(*v)) {
                self.hits += 1;
                return &e.action;
            }
        }
        self.misses += 1;
        &self.default_action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpec, Primitive};
    use steelworks_netsim::node::PortId;

    fn fwd(p: usize) -> ActionSpec {
        ActionSpec::new(vec![Primitive::Forward(PortId(p))])
    }

    fn fs_with(field: Field, v: u64) -> FieldSet {
        let mut fs = FieldSet::default();
        fs.set(field, v);
        fs
    }

    #[test]
    fn exact_match_hit_and_miss() {
        let mut t = Table::new(
            "t",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            ActionSpec::drop(),
        );
        t.insert(Entry {
            keys: vec![TernaryKey::exact(0x8001)],
            priority: 0,
            action: fwd(2),
        });
        let hit = t.lookup(&fs_with(Field::RtFrameId, 0x8001)).clone();
        assert_eq!(hit.primitives(), fwd(2).primitives());
        let miss = t.lookup(&fs_with(Field::RtFrameId, 0x8002)).clone();
        assert!(miss.is_drop());
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn ternary_priority_order() {
        let mut t = Table::new(
            "t",
            vec![Field::RtFrameId],
            MatchKind::Ternary,
            ActionSpec::drop(),
        );
        // Low-priority wildcard first, then a high-priority exact.
        t.insert(Entry {
            keys: vec![TernaryKey::any()],
            priority: 1,
            action: fwd(9),
        });
        t.insert(Entry {
            keys: vec![TernaryKey::exact(5)],
            priority: 10,
            action: fwd(1),
        });
        assert_eq!(
            t.lookup(&fs_with(Field::RtFrameId, 5)).primitives(),
            fwd(1).primitives()
        );
        assert_eq!(
            t.lookup(&fs_with(Field::RtFrameId, 6)).primitives(),
            fwd(9).primitives()
        );
    }

    #[test]
    fn masked_match() {
        let mut t = Table::new(
            "t",
            vec![Field::RtFrameId],
            MatchKind::Ternary,
            ActionSpec::drop(),
        );
        // Match the 0x8000 block.
        t.insert(Entry {
            keys: vec![TernaryKey {
                value: 0x8000,
                mask: 0xFF00,
            }],
            priority: 0,
            action: fwd(3),
        });
        assert!(!t.lookup(&fs_with(Field::RtFrameId, 0x8042)).is_drop());
        assert!(t.lookup(&fs_with(Field::RtFrameId, 0x7042)).is_drop());
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = Table::new(
            "routes",
            vec![Field::EthDst],
            MatchKind::Lpm,
            ActionSpec::drop(),
        );
        // /8 covering 0x0A...: forward to 1.
        t.insert(Entry {
            keys: vec![TernaryKey::prefix(0x0A00_0000, 8, 32)],
            priority: 0,
            action: fwd(1),
        });
        // /24 more specific: forward to 2.
        t.insert(Entry {
            keys: vec![TernaryKey::prefix(0x0A01_0200, 24, 32)],
            priority: 0,
            action: fwd(2),
        });
        assert_eq!(
            t.lookup(&fs_with(Field::EthDst, 0x0A01_0242)).primitives(),
            fwd(2).primitives(),
            "/24 preferred"
        );
        assert_eq!(
            t.lookup(&fs_with(Field::EthDst, 0x0AFF_0001)).primitives(),
            fwd(1).primitives(),
            "/8 fallback"
        );
        assert!(t.lookup(&fs_with(Field::EthDst, 0x0B00_0001)).is_drop());
    }

    #[test]
    fn prefix_key_construction() {
        let k = TernaryKey::prefix(0xFF12_3456, 8, 32);
        assert_eq!(k.mask, 0xFF00_0000);
        assert_eq!(k.value, 0xFF00_0000);
        assert_eq!(k.prefix_len(), 8);
        assert_eq!(TernaryKey::prefix(0, 0, 32).mask, 0);
    }

    #[test]
    fn remove_entry() {
        let mut t = Table::new(
            "t",
            vec![Field::EthType],
            MatchKind::Exact,
            ActionSpec::drop(),
        );
        let id = t.insert(Entry {
            keys: vec![TernaryKey::exact(0x0800)],
            priority: 0,
            action: fwd(1),
        });
        assert_eq!(t.len(), 1);
        assert!(t.remove(id));
        assert!(!t.remove(id));
        assert!(t.is_empty());
        assert!(t.lookup(&fs_with(Field::EthType, 0x0800)).is_drop());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(
            "t",
            vec![Field::EthType, Field::IngressPort],
            MatchKind::Exact,
            ActionSpec::drop(),
        );
        t.insert(Entry {
            keys: vec![TernaryKey::exact(1)],
            priority: 0,
            action: fwd(1),
        });
    }

    #[test]
    fn two_field_key() {
        let mut t = Table::new(
            "t",
            vec![Field::RtFrameId, Field::IngressPort],
            MatchKind::Exact,
            ActionSpec::drop(),
        );
        t.insert(Entry {
            keys: vec![TernaryKey::exact(7), TernaryKey::exact(2)],
            priority: 0,
            action: fwd(4),
        });
        let mut fs = FieldSet::default();
        fs.set(Field::RtFrameId, 7);
        fs.set(Field::IngressPort, 2);
        assert!(!t.lookup(&fs).is_drop());
        fs.set(Field::IngressPort, 3);
        assert!(t.lookup(&fs).is_drop());
    }
}
