//! # steelworks-dataplane
//!
//! A programmable data plane substrate equivalent to the paper's
//! DPDK-SWX + P4 stack (§4): parser → match-action tables → deparser,
//! with registers, counters, meters, mirroring, digests, and an
//! embedded control-plane trait that can reprogram tables at runtime
//! and inject frames (packet-out).
//!
//! `steelworks-core::instaplc` expresses the paper's InstaPLC
//! application entirely in terms of this crate's primitives; nothing in
//! here knows about vPLCs.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod action;
pub mod device;
pub mod fields;
pub mod pipeline;
pub mod registers;
pub mod table;

/// Convenient glob import.
pub mod prelude {
    pub use crate::action::{ActionSpec, IndexSource, Primitive, ValueSource};
    pub use crate::device::{
        ControlApi, NullController, PipeSwitchStats, PipelineController, PipelineSwitch,
    };
    pub use crate::fields::{deparse, mac_to_u64, parse, u64_to_mac, Field, FieldSet};
    pub use crate::pipeline::{Digest, Pipeline, Verdict};
    pub use crate::registers::{CounterArray, Meter, MeterArray, MeterColor, RegisterArray};
    pub use crate::table::{Entry, EntryId, MatchKind, Table, TernaryKey};
}
