//! Stateful pipeline objects: register arrays, counters, meters.

use steelworks_netsim::time::{NanoDur, Nanos};

/// A register array: u64 cells addressable from actions and from the
/// control plane. This is the stateful primitive InstaPLC's liveness
/// monitoring is written against (last-seen timestamps per CR).
#[derive(Clone, Debug)]
pub struct RegisterArray {
    /// Name for control-plane addressing.
    pub name: String,
    cells: Vec<u64>,
}

impl RegisterArray {
    /// `size` zeroed cells.
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        RegisterArray {
            name: name.into(),
            cells: vec![0; size],
        }
    }

    /// Read a cell (out-of-range reads return 0, like unmatched P4
    /// register reads on some targets — documented behaviour).
    pub fn read(&self, idx: u32) -> u64 {
        self.cells.get(idx as usize).copied().unwrap_or(0)
    }

    /// Write a cell (out-of-range writes are ignored).
    pub fn write(&mut self, idx: u32, v: u64) {
        if let Some(c) = self.cells.get_mut(idx as usize) {
            *c = v;
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True for a zero-size array.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Packet/byte counters.
#[derive(Clone, Debug, Default)]
pub struct CounterArray {
    cells: Vec<(u64, u64)>,
}

impl CounterArray {
    /// `size` zeroed counters.
    pub fn new(size: usize) -> Self {
        CounterArray {
            cells: vec![(0, 0); size],
        }
    }

    /// Count one packet of `bytes`.
    pub fn inc(&mut self, idx: u32, bytes: u64) {
        if let Some((p, b)) = self.cells.get_mut(idx as usize) {
            *p += 1;
            *b += bytes;
        }
    }

    /// (packets, bytes) at `idx`.
    pub fn read(&self, idx: u32) -> (u64, u64) {
        self.cells.get(idx as usize).copied().unwrap_or((0, 0))
    }
}

/// Two-color token-bucket meter (srTCM simplified: green/red).
#[derive(Clone, Debug)]
pub struct Meter {
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    tokens: f64,
    last: Nanos,
}

/// Meter verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MeterColor {
    /// Within profile.
    Green,
    /// Over rate.
    Red,
}

impl Meter {
    /// A meter admitting `rate_bytes_per_sec` with `burst_bytes` depth.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        Meter {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last: Nanos::ZERO,
        }
    }

    /// Meter one packet.
    pub fn meter(&mut self, now: Nanos, bytes: u64) -> MeterColor {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens =
            (self.tokens + dt * self.rate_bytes_per_sec as f64).min(self.burst_bytes as f64);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            MeterColor::Green
        } else {
            MeterColor::Red
        }
    }

    /// Time until `bytes` tokens will be available (for tests).
    pub fn time_to_green(&self, bytes: u64) -> NanoDur {
        if self.tokens >= bytes as f64 {
            return NanoDur::ZERO;
        }
        let missing = bytes as f64 - self.tokens;
        NanoDur::from_secs_f64(missing / self.rate_bytes_per_sec as f64)
    }
}

/// An array of independent meters (one per index, lazily created).
#[derive(Clone, Debug)]
pub struct MeterArray {
    /// Name for control-plane addressing.
    pub name: String,
    rate_bytes_per_sec: u64,
    burst_bytes: u64,
    cells: std::collections::BTreeMap<u32, Meter>,
}

impl MeterArray {
    /// All cells share one profile (rate, burst).
    pub fn new(name: impl Into<String>, rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        MeterArray {
            name: name.into(),
            rate_bytes_per_sec,
            burst_bytes,
            cells: std::collections::BTreeMap::new(),
        }
    }

    /// Meter one packet against cell `idx`.
    pub fn meter(&mut self, idx: u32, now: Nanos, bytes: u64) -> MeterColor {
        let (rate, burst) = (self.rate_bytes_per_sec, self.burst_bytes);
        self.cells
            .entry(idx)
            .or_insert_with(|| Meter::new(rate, burst))
            .meter(now, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_read_write() {
        let mut r = RegisterArray::new("last_seen", 8);
        r.write(3, 99);
        assert_eq!(r.read(3), 99);
        assert_eq!(r.read(7), 0);
        r.write(100, 5); // ignored
        assert_eq!(r.read(100), 0);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = CounterArray::new(4);
        c.inc(1, 64);
        c.inc(1, 128);
        assert_eq!(c.read(1), (2, 192));
        assert_eq!(c.read(0), (0, 0));
        c.inc(9, 10); // ignored
    }

    #[test]
    fn meter_green_within_burst_red_over() {
        let mut m = Meter::new(1_000_000, 1_000); // 1 MB/s, 1 KB burst
        assert_eq!(m.meter(Nanos::ZERO, 600), MeterColor::Green);
        assert_eq!(m.meter(Nanos(1), 600), MeterColor::Red);
        // After 1 ms, 1000 bytes refilled.
        assert_eq!(m.meter(Nanos::from_millis(1), 600), MeterColor::Green);
    }

    #[test]
    fn meter_array_cells_independent() {
        let mut m = MeterArray::new("m", 1_000_000, 1_000);
        assert_eq!(m.meter(1, Nanos::ZERO, 1_000), MeterColor::Green);
        assert_eq!(m.meter(1, Nanos(1), 1_000), MeterColor::Red);
        // A different cell still has its full burst.
        assert_eq!(m.meter(2, Nanos(1), 1_000), MeterColor::Green);
    }

    #[test]
    fn meter_time_to_green() {
        let mut m = Meter::new(1_000_000, 1_000);
        m.meter(Nanos::ZERO, 1_000);
        let wait = m.time_to_green(500);
        assert_eq!(wait, NanoDur::from_micros(500));
    }
}
