//! Header fields and the parser.
//!
//! The pipeline matches and acts on a fixed vocabulary of fields —
//! exactly the P4 workflow of declaring headers + a parser, specialized
//! to the two protocols industrial convergence cares about: Ethernet
//! (with 802.1Q) and the cyclic RT protocol of `steelworks-rtnet`.

use steelworks_netsim::frame::{ethertype, EthFrame, MacAddr};
use steelworks_netsim::node::PortId;

/// A matchable/settable field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Field {
    /// Destination MAC (48 bits, as u64).
    EthDst,
    /// Source MAC.
    EthSrc,
    /// Ethertype.
    EthType,
    /// VLAN priority code point (0 when untagged).
    VlanPcp,
    /// VLAN id (0 when untagged).
    VlanVid,
    /// RT protocol frame id (CR identity); 0 for non-RT frames.
    RtFrameId,
    /// RT protocol frame type byte (+1, so 0 = "not RT").
    RtFrameType,
    /// Ingress port index.
    IngressPort,
    /// Scratch metadata register (16 of them).
    Meta(u8),
}

/// Parsed header values + metadata for one packet traversal.
#[derive(Clone, Debug, Default)]
pub struct FieldSet {
    eth_dst: u64,
    eth_src: u64,
    eth_type: u64,
    vlan_pcp: u64,
    vlan_vid: u64,
    rt_frame_id: u64,
    rt_frame_type: u64,
    ingress_port: u64,
    meta: [u64; 16],
}

impl FieldSet {
    /// Read a field.
    pub fn get(&self, f: Field) -> u64 {
        match f {
            Field::EthDst => self.eth_dst,
            Field::EthSrc => self.eth_src,
            Field::EthType => self.eth_type,
            Field::VlanPcp => self.vlan_pcp,
            Field::VlanVid => self.vlan_vid,
            Field::RtFrameId => self.rt_frame_id,
            Field::RtFrameType => self.rt_frame_type,
            Field::IngressPort => self.ingress_port,
            Field::Meta(i) => self.meta[i as usize & 15],
        }
    }

    /// Write a field.
    pub fn set(&mut self, f: Field, v: u64) {
        match f {
            Field::EthDst => self.eth_dst = v,
            Field::EthSrc => self.eth_src = v,
            Field::EthType => self.eth_type = v,
            Field::VlanPcp => self.vlan_pcp = v,
            Field::VlanVid => self.vlan_vid = v,
            Field::RtFrameId => self.rt_frame_id = v,
            Field::RtFrameType => self.rt_frame_type = v,
            Field::IngressPort => self.ingress_port = v,
            Field::Meta(i) => self.meta[i as usize & 15] = v,
        }
    }
}

/// Convert a MAC address to its u64 field encoding.
pub fn mac_to_u64(mac: MacAddr) -> u64 {
    let mut v = 0u64;
    for b in mac.0 {
        v = (v << 8) | b as u64;
    }
    v
}

/// Convert a u64 field back to a MAC address.
pub fn u64_to_mac(v: u64) -> MacAddr {
    let mut out = [0u8; 6];
    for (i, b) in out.iter_mut().enumerate() {
        *b = (v >> (8 * (5 - i))) as u8;
    }
    MacAddr(out)
}

/// Parse a frame into a [`FieldSet`] (the pipeline's "parser" stage).
pub fn parse(frame: &EthFrame, ingress: PortId) -> FieldSet {
    let mut fs = FieldSet {
        eth_dst: mac_to_u64(frame.dst),
        eth_src: mac_to_u64(frame.src),
        eth_type: frame.ethertype as u64,
        ingress_port: ingress.0 as u64,
        ..FieldSet::default()
    };
    if let Some(tag) = frame.vlan {
        fs.vlan_pcp = tag.pcp as u64;
        fs.vlan_vid = tag.vid as u64;
    }
    if frame.ethertype == ethertype::INDUSTRIAL_RT && frame.payload.len() >= 3 {
        fs.rt_frame_id = u16::from_be_bytes([frame.payload[0], frame.payload[1]]) as u64;
        fs.rt_frame_type = frame.payload[2] as u64 + 1;
    }
    fs
}

/// Apply settable fields back onto a frame (the "deparser").
/// Only Ethernet addresses and ethertype are rewritable; RT payload
/// bytes stay untouched (rewriting process data is out of scope for a
/// forwarding pipeline).
pub fn deparse(fs: &FieldSet, frame: &mut EthFrame) {
    frame.dst = u64_to_mac(fs.eth_dst);
    frame.src = u64_to_mac(fs.eth_src);
    frame.ethertype = fs.eth_type as u16;
    if let Some(tag) = &mut frame.vlan {
        tag.pcp = fs.vlan_pcp as u8 & 7;
        tag.vid = fs.vlan_vid as u16 & 0xFFF;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steelworks_netsim::bytes::Bytes;
    use steelworks_netsim::frame::VlanTag;

    #[test]
    fn mac_u64_roundtrip() {
        let mac = MacAddr([0x02, 0x34, 0x56, 0x78, 0x9A, 0xBC]);
        assert_eq!(u64_to_mac(mac_to_u64(mac)), mac);
        assert_eq!(mac_to_u64(MacAddr([0, 0, 0, 0, 0, 1])), 1);
    }

    #[test]
    fn parse_plain_ethernet() {
        let f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::IPV4,
            Bytes::from_static(&[0; 20]),
        );
        let fs = parse(&f, PortId(3));
        assert_eq!(fs.get(Field::EthType), ethertype::IPV4 as u64);
        assert_eq!(fs.get(Field::IngressPort), 3);
        assert_eq!(fs.get(Field::RtFrameType), 0, "not RT");
        assert_eq!(fs.get(Field::VlanVid), 0);
    }

    #[test]
    fn parse_rt_frame_extracts_cr_fields() {
        // RT payload: frame_id 0x8001, type 2 (cyclic).
        let f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::INDUSTRIAL_RT,
            Bytes::from_static(&[0x80, 0x01, 2, 0, 0, 0]),
        )
        .with_vlan(VlanTag::RT);
        let fs = parse(&f, PortId(0));
        assert_eq!(fs.get(Field::RtFrameId), 0x8001);
        assert_eq!(fs.get(Field::RtFrameType), 3, "type byte + 1");
        assert_eq!(fs.get(Field::VlanPcp), 6);
    }

    #[test]
    fn deparse_rewrites_macs() {
        let mut f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            ethertype::IPV4,
            Bytes::new(),
        );
        let mut fs = parse(&f, PortId(0));
        fs.set(Field::EthDst, mac_to_u64(MacAddr::local(9)));
        deparse(&fs, &mut f);
        assert_eq!(f.dst, MacAddr::local(9));
        assert_eq!(f.src, MacAddr::local(2));
    }

    #[test]
    fn meta_registers_independent() {
        let mut fs = FieldSet::default();
        fs.set(Field::Meta(0), 7);
        fs.set(Field::Meta(5), 9);
        assert_eq!(fs.get(Field::Meta(0)), 7);
        assert_eq!(fs.get(Field::Meta(5)), 9);
        assert_eq!(fs.get(Field::Meta(1)), 0);
    }
}
