//! Action primitives — the verbs a matched entry executes.

use crate::fields::Field;
use steelworks_netsim::node::PortId;

/// Source of a value for register writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueSource {
    /// A literal.
    Const(u64),
    /// The current value of a field.
    FromField(Field),
    /// The switch's current time in ns (data-plane timestamping — the
    /// primitive InstaPLC's liveness monitor is built on).
    NowNs,
}

/// Source of a register index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexSource {
    /// A literal index.
    Const(u32),
    /// Low 32 bits of a field (e.g. `RtFrameId`).
    FromField(Field),
}

/// One primitive operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Primitive {
    /// Emit the packet on a port (may appear multiple times).
    Forward(PortId),
    /// Emit on all ports except ingress.
    Flood,
    /// Stop processing and discard (cancels prior Forwards).
    Drop,
    /// Copy to a port and continue processing.
    Mirror(PortId),
    /// Rewrite a header/metadata field.
    SetField(Field, u64),
    /// Copy one field into another.
    CopyField {
        /// Destination field.
        dst: Field,
        /// Source field.
        src: Field,
    },
    /// Write to a register array.
    RegWrite {
        /// Register array id.
        reg: u32,
        /// Which cell.
        index: IndexSource,
        /// What to write.
        value: ValueSource,
    },
    /// Load a register cell into a metadata field.
    RegLoad {
        /// Register array id.
        reg: u32,
        /// Which cell.
        index: IndexSource,
        /// Destination metadata field.
        dst: Field,
    },
    /// Increment a counter.
    CountInc(u32),
    /// Send a digest (notification) to the control plane, carrying the
    /// value of a field.
    Digest {
        /// Application-defined digest kind.
        kind: u32,
        /// Field whose value rides along.
        field: Field,
    },
    /// Send a digest that also carries the full packet payload
    /// (a packet-in): used when the controller must parse the packet —
    /// e.g. InstaPLC reading a ConnectReq's parameters to build the
    /// digital twin.
    DigestPacket {
        /// Application-defined digest kind.
        kind: u32,
    },
    /// Meter the packet against a meter-array cell and write the color
    /// (0 = green, 1 = red) into a metadata field — combine with a
    /// follow-up table matching that field to police traffic classes.
    MeterPacket {
        /// Meter array id.
        meter: u32,
        /// Cell selector.
        index: IndexSource,
        /// Destination field for the color.
        dst: Field,
    },
    /// Jump to table `index` in the pipeline (must be > current).
    GotoTable(usize),
}

/// An ordered list of primitives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ActionSpec {
    primitives: Vec<Primitive>,
}

impl ActionSpec {
    /// From a primitive list.
    pub fn new(primitives: Vec<Primitive>) -> Self {
        ActionSpec { primitives }
    }

    /// The canonical drop action.
    pub fn drop() -> Self {
        ActionSpec::new(vec![Primitive::Drop])
    }

    /// Forward to a single port.
    pub fn forward(port: PortId) -> Self {
        ActionSpec::new(vec![Primitive::Forward(port)])
    }

    /// Flood.
    pub fn flood() -> Self {
        ActionSpec::new(vec![Primitive::Flood])
    }

    /// No-op (fall through to the next table).
    pub fn nop() -> Self {
        ActionSpec::new(vec![])
    }

    /// The primitive list.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// True if this action's final verdict is a drop.
    pub fn is_drop(&self) -> bool {
        self.primitives.contains(&Primitive::Drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(ActionSpec::drop().is_drop());
        assert!(!ActionSpec::forward(PortId(1)).is_drop());
        assert!(ActionSpec::nop().primitives().is_empty());
        assert_eq!(ActionSpec::flood().primitives(), &[Primitive::Flood]);
    }

    #[test]
    fn mixed_action_with_drop_is_drop() {
        let a = ActionSpec::new(vec![Primitive::Mirror(PortId(3)), Primitive::Drop]);
        assert!(a.is_drop());
    }
}
