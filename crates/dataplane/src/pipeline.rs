//! Pipeline execution: parser → tables → deparser.
//!
//! Models the DPDK SWX / P4 execution model: a packet's parsed fields
//! flow through a sequence of match-action tables; actions may rewrite
//! fields, mirror/forward/drop, touch registers and counters, raise
//! digests for the control plane, and jump forward between tables.

use crate::action::{IndexSource, Primitive, ValueSource};
use crate::fields::FieldSet;
use crate::registers::{CounterArray, MeterArray, MeterColor, RegisterArray};
use crate::table::Table;
use steelworks_netsim::bytes::Bytes;
use steelworks_netsim::node::PortId;
use steelworks_netsim::time::Nanos;

/// A control-plane notification raised by a `Digest` primitive.
#[derive(Clone, Debug)]
pub struct Digest {
    /// Application-defined kind.
    pub kind: u32,
    /// The field value the action attached.
    pub value: u64,
    /// Full parsed fields of the triggering packet (context for the
    /// controller: source MAC, frame id, ingress port, ...).
    pub fields: FieldSet,
    /// The packet payload, when raised by `DigestPacket` (packet-in).
    pub payload: Option<Bytes>,
}

/// The outcome of processing one packet.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Ports receiving the (deparsed) packet via `Forward`/`Flood`.
    pub forwards: Vec<PortId>,
    /// Ports receiving a copy via `Mirror` (survive a later `Drop`).
    pub mirrors: Vec<PortId>,
    /// Final field values (apply with [`crate::fields::deparse`]).
    pub fields: FieldSet,
    /// Digests raised.
    pub digests: Vec<Digest>,
    /// Whether a `Drop` cancelled the forwards.
    pub dropped: bool,
}

impl Verdict {
    /// All egress ports (mirrors first, then forwards), deduplicated,
    /// never including `ingress`.
    pub fn egress_ports(&self, ingress: PortId) -> Vec<PortId> {
        let mut out = Vec::new();
        for p in self.mirrors.iter().chain(if self.dropped {
            [].iter()
        } else {
            self.forwards.iter()
        }) {
            if *p != ingress && !out.contains(p) {
                out.push(*p);
            }
        }
        out
    }
}

/// A programmable pipeline: tables + stateful objects.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    /// Match-action tables, executed in order (subject to `GotoTable`).
    pub tables: Vec<Table>,
    /// Register arrays, addressed by index in actions.
    pub registers: Vec<RegisterArray>,
    /// Counters.
    pub counters: CounterArray,
    /// Meter arrays, addressed by index in actions.
    pub meters: Vec<MeterArray>,
}

impl Pipeline {
    /// Empty pipeline.
    pub fn new() -> Self {
        Pipeline {
            tables: Vec::new(),
            registers: Vec::new(),
            counters: CounterArray::new(64),
            meters: Vec::new(),
        }
    }

    /// Append a meter array, returning its id.
    pub fn add_meters(&mut self, meters: MeterArray) -> u32 {
        self.meters.push(meters);
        (self.meters.len() - 1) as u32
    }

    /// Append a table, returning its index.
    pub fn add_table(&mut self, table: Table) -> usize {
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Append a register array, returning its id.
    pub fn add_registers(&mut self, regs: RegisterArray) -> u32 {
        self.registers.push(regs);
        (self.registers.len() - 1) as u32
    }

    /// Find a table by name (control-plane addressing).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Find a register array by name.
    pub fn registers_by_name(&self, name: &str) -> Option<&RegisterArray> {
        self.registers.iter().find(|r| r.name == name)
    }

    /// Mutable register lookup by name.
    pub fn registers_by_name_mut(&mut self, name: &str) -> Option<&mut RegisterArray> {
        self.registers.iter_mut().find(|r| r.name == name)
    }

    fn resolve_index(&self, idx: &IndexSource, fs: &FieldSet) -> u32 {
        match idx {
            IndexSource::Const(i) => *i,
            IndexSource::FromField(f) => fs.get(*f) as u32,
        }
    }

    fn resolve_value(&self, v: &ValueSource, fs: &FieldSet, now: Nanos) -> u64 {
        match v {
            ValueSource::Const(c) => *c,
            ValueSource::FromField(f) => fs.get(*f),
            ValueSource::NowNs => now.as_nanos(),
        }
    }

    /// Process one parsed packet through the pipeline.
    ///
    /// `ports` is the switch's port count (needed by `Flood`);
    /// `wire_len` feeds counters.
    pub fn process(
        &mut self,
        mut fs: FieldSet,
        ingress: PortId,
        now: Nanos,
        ports: usize,
        wire_len: u64,
        payload: &Bytes,
    ) -> Verdict {
        let mut verdict = Verdict {
            forwards: Vec::new(),
            mirrors: Vec::new(),
            fields: FieldSet::default(),
            digests: Vec::new(),
            dropped: false,
        };
        let mut ti = 0usize;
        let mut steps = 0usize;
        'tables: while ti < self.tables.len() {
            steps += 1;
            assert!(steps <= self.tables.len(), "GotoTable loop");
            // steelcheck: allow(hot-path-alloc): the action must be cloned out of the table to release the borrow before primitives mutate state; actions are a few rewrite ops
            let action = self.tables[ti].lookup(&fs).clone();
            let mut next = ti + 1;
            for prim in action.primitives() {
                match prim {
                    Primitive::Forward(p) => verdict.forwards.push(*p),
                    Primitive::Flood => {
                        for p in 0..ports {
                            if p != ingress.0 {
                                verdict.forwards.push(PortId(p));
                            }
                        }
                    }
                    Primitive::Drop => {
                        verdict.dropped = true;
                        break 'tables;
                    }
                    Primitive::Mirror(p) => verdict.mirrors.push(*p),
                    Primitive::SetField(f, v) => fs.set(*f, *v),
                    Primitive::CopyField { dst, src } => {
                        let v = fs.get(*src);
                        fs.set(*dst, v);
                    }
                    Primitive::RegWrite { reg, index, value } => {
                        let i = self.resolve_index(index, &fs);
                        let v = self.resolve_value(value, &fs, now);
                        if let Some(r) = self.registers.get_mut(*reg as usize) {
                            r.write(i, v);
                        }
                    }
                    Primitive::RegLoad { reg, index, dst } => {
                        let i = self.resolve_index(index, &fs);
                        let v = self
                            .registers
                            .get(*reg as usize)
                            .map(|r| r.read(i))
                            .unwrap_or(0);
                        fs.set(*dst, v);
                    }
                    Primitive::CountInc(idx) => self.counters.inc(*idx, wire_len),
                    Primitive::Digest { kind, field } => verdict.digests.push(Digest {
                        kind: *kind,
                        value: fs.get(*field),
                        // steelcheck: allow(hot-path-alloc): digests snapshot the field state by contract; emitted only on digest-matching entries, not per frame
                        fields: fs.clone(),
                        payload: None,
                    }),
                    Primitive::DigestPacket { kind } => verdict.digests.push(Digest {
                        kind: *kind,
                        value: 0,
                        // steelcheck: allow(hot-path-alloc): digest snapshot, rare control-plane path
                        fields: fs.clone(),
                        // steelcheck: allow(hot-path-alloc): payload clones by Arc refcount
                        payload: Some(payload.clone()),
                    }),
                    Primitive::MeterPacket { meter, index, dst } => {
                        let i = self.resolve_index(index, &fs);
                        let color = self
                            .meters
                            .get_mut(*meter as usize)
                            .map(|m| m.meter(i, now, wire_len))
                            .unwrap_or(MeterColor::Green);
                        fs.set(*dst, matches!(color, MeterColor::Red) as u64);
                    }
                    Primitive::GotoTable(t) => {
                        assert!(*t > ti, "GotoTable must jump forward");
                        next = *t;
                    }
                }
            }
            ti = next;
        }
        verdict.fields = fs;
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionSpec;
    use crate::fields::Field;
    use crate::table::{Entry, MatchKind, TernaryKey};

    fn one_table_pipeline(default: ActionSpec) -> Pipeline {
        let mut p = Pipeline::new();
        p.add_table(Table::new(
            "t0",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            default,
        ));
        p
    }

    fn fs(frame_id: u64) -> FieldSet {
        let mut f = FieldSet::default();
        f.set(Field::RtFrameId, frame_id);
        f
    }

    #[test]
    fn default_flood() {
        let mut p = one_table_pipeline(ActionSpec::flood());
        let v = p.process(fs(1), PortId(0), Nanos::ZERO, 4, 64, &Bytes::new());
        assert_eq!(
            v.egress_ports(PortId(0)),
            vec![PortId(1), PortId(2), PortId(3)]
        );
    }

    #[test]
    fn drop_cancels_forward_keeps_mirror() {
        let mut p = one_table_pipeline(ActionSpec::drop());
        p.tables[0].insert(Entry {
            keys: vec![TernaryKey::exact(7)],
            priority: 0,
            action: ActionSpec::new(vec![
                Primitive::Mirror(PortId(3)),
                Primitive::Forward(PortId(1)),
                Primitive::Drop,
            ]),
        });
        let v = p.process(fs(7), PortId(0), Nanos::ZERO, 4, 64, &Bytes::new());
        assert!(v.dropped);
        assert_eq!(v.egress_ports(PortId(0)), vec![PortId(3)]);
    }

    #[test]
    fn set_field_applies() {
        let mut p = one_table_pipeline(ActionSpec::new(vec![
            Primitive::SetField(Field::EthDst, 42),
            Primitive::Forward(PortId(1)),
        ]));
        let v = p.process(fs(0), PortId(0), Nanos::ZERO, 2, 64, &Bytes::new());
        assert_eq!(v.fields.get(Field::EthDst), 42);
    }

    #[test]
    fn register_timestamping() {
        let mut p = Pipeline::new();
        let reg = p.add_registers(RegisterArray::new("last_seen", 16));
        p.add_table(Table::new(
            "t0",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            ActionSpec::new(vec![
                Primitive::RegWrite {
                    reg,
                    index: IndexSource::FromField(Field::RtFrameId),
                    value: ValueSource::NowNs,
                },
                Primitive::Forward(PortId(1)),
            ]),
        ));
        p.process(fs(5), PortId(0), Nanos(12345), 2, 64, &Bytes::new());
        assert_eq!(p.registers[0].read(5), 12345);
        assert_eq!(p.registers[0].read(4), 0);
    }

    #[test]
    fn digest_carries_context() {
        let mut p = one_table_pipeline(ActionSpec::new(vec![
            Primitive::Digest {
                kind: 9,
                field: Field::RtFrameId,
            },
            Primitive::Forward(PortId(1)),
        ]));
        let mut f = fs(0x8001);
        f.set(Field::IngressPort, 2);
        let v = p.process(f, PortId(2), Nanos::ZERO, 4, 64, &Bytes::new());
        assert_eq!(v.digests.len(), 1);
        assert_eq!(v.digests[0].kind, 9);
        assert_eq!(v.digests[0].value, 0x8001);
        assert_eq!(v.digests[0].fields.get(Field::IngressPort), 2);
    }

    #[test]
    fn goto_table_skips() {
        let mut p = Pipeline::new();
        p.add_table(Table::new(
            "t0",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            ActionSpec::new(vec![Primitive::GotoTable(2)]),
        ));
        p.add_table(Table::new(
            "t1",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            // Would mark the packet if executed.
            ActionSpec::new(vec![Primitive::SetField(Field::Meta(0), 1)]),
        ));
        p.add_table(Table::new(
            "t2",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            ActionSpec::forward(PortId(1)),
        ));
        let v = p.process(fs(0), PortId(0), Nanos::ZERO, 2, 64, &Bytes::new());
        assert_eq!(v.fields.get(Field::Meta(0)), 0, "t1 skipped");
        assert_eq!(v.forwards, vec![PortId(1)]);
    }

    #[test]
    fn meter_policing_two_stage() {
        // Stage 0: meter into Meta(0); stage 1: drop red packets.
        let mut p = Pipeline::new();
        let m = p.add_meters(crate::registers::MeterArray::new("police", 1_000_000, 200));
        p.add_table(Table::new(
            "meter",
            vec![Field::RtFrameId],
            MatchKind::Exact,
            ActionSpec::new(vec![Primitive::MeterPacket {
                meter: m,
                index: IndexSource::FromField(Field::RtFrameId),
                dst: Field::Meta(0),
            }]),
        ));
        let mut verdict_table = Table::new(
            "verdict",
            vec![Field::Meta(0)],
            MatchKind::Exact,
            ActionSpec::forward(PortId(1)),
        );
        verdict_table.insert(Entry {
            keys: vec![TernaryKey::exact(1)], // red
            priority: 0,
            action: ActionSpec::drop(),
        });
        p.add_table(verdict_table);
        // Two 84-byte packets fit the 200-byte burst; the third is red.
        let v1 = p.process(fs(5), PortId(0), Nanos::ZERO, 2, 84, &Bytes::new());
        let v2 = p.process(fs(5), PortId(0), Nanos(1), 2, 84, &Bytes::new());
        let v3 = p.process(fs(5), PortId(0), Nanos(2), 2, 84, &Bytes::new());
        assert!(!v1.dropped && !v2.dropped);
        assert!(v3.dropped, "over-rate packet policed");
        // A different CR id has its own bucket.
        let v4 = p.process(fs(6), PortId(0), Nanos(3), 2, 84, &Bytes::new());
        assert!(!v4.dropped);
    }

    #[test]
    fn counters_count_bytes() {
        let mut p = one_table_pipeline(ActionSpec::new(vec![
            Primitive::CountInc(3),
            Primitive::Forward(PortId(1)),
        ]));
        p.process(fs(0), PortId(0), Nanos::ZERO, 2, 84, &Bytes::new());
        p.process(fs(0), PortId(0), Nanos::ZERO, 2, 84, &Bytes::new());
        assert_eq!(p.counters.read(3), (2, 168));
    }

    #[test]
    fn egress_excludes_ingress_and_dedups() {
        let v = Verdict {
            forwards: vec![PortId(1), PortId(1), PortId(0)],
            mirrors: vec![PortId(2)],
            fields: FieldSet::default(),
            digests: vec![],
            dropped: false,
        };
        assert_eq!(v.egress_ports(PortId(0)), vec![PortId(2), PortId(1)]);
    }
}
