#!/usr/bin/env bash
# Static-analysis gate: run steelcheck, the in-repo lint pass that
# enforces the determinism & hermeticity contract (see DESIGN.md).
#
# Run from anywhere inside the repo:
#   scripts/check_lint.sh            # human-readable diagnostics
#   scripts/check_lint.sh --json     # machine-readable report
#
# Rules enforced (each with a per-rule allowlist and inline
# `// steelcheck: allow(<rule>): why` suppressions):
#   nondet-collections  no HashMap/HashSet in simulation crates
#   wall-clock          no Instant::now/SystemTime outside crates/bench
#   unwrap-in-lib       no .unwrap()/.expect( in library non-test code
#   manifest-hygiene    path-only deps; no external sources in Cargo.lock
#   float-hygiene       no float equality; no sim-time -> float casts
#                       outside stats modules
#
# Exit status: 0 clean, 1 findings, 2 usage/IO error.

set -euo pipefail

cd "$(dirname "$0")/.."

exec cargo run --release --frozen -q -p steelcheck -- "$@"
