#!/usr/bin/env bash
# Static-analysis gate: run steelcheck, the in-repo four-layer
# analysis (lexical scan, workspace call graph, reachability rules,
# and per-function CFG/dataflow rules) that enforces the determinism
# & hermeticity contract (see DESIGN.md).
#
# Run from anywhere inside the repo:
#   scripts/check_lint.sh                   # human-readable diagnostics
#   scripts/check_lint.sh --format json     # machine-readable report
#   scripts/check_lint.sh --sarif out.sarif # also write a SARIF 2.1.0 log
#   scripts/check_lint.sh --list-rules      # rule table
#   scripts/check_lint.sh --explain RULE    # one rule, in full
#
# Rules enforced (see `steelcheck --list-rules`; each suppressible with
# inline `// steelcheck: allow(<rule>): why` or the reviewed allowlist):
#   R1 nondet-collections   R6 thread-outside-exec   R11 lock-discipline
#   R2 wall-clock           R7 wallclock-reachable   R12 hot-path-alloc
#   R3 unwrap-in-lib        R8 panic-reachable       R13 float-accum-order
#   R4 manifest-hygiene     R9 rng-entropy
#   R5 float-hygiene        R10 network-outside-serve
# plus the unsuppressible directive audits (bad-directive,
# unused-suppression) and the repo-root `float_accum.allow` inventory
# that carries R13's reviewed accumulation sites.
#
# Exit status: 0 clean, 1 findings, 2 usage/IO error.

set -euo pipefail

cd "$(dirname "$0")/.."

# `--sarif FILE` writes a SARIF log in addition to the normal text
# diagnostics, for code-scanning UIs; all other args pass through.
sarif_out=""
passthrough=()
while [ $# -gt 0 ]; do
    case "$1" in
        --sarif)
            [ $# -ge 2 ] || { echo "check_lint.sh: --sarif requires a file" >&2; exit 2; }
            sarif_out="$2"
            shift 2
            ;;
        *)
            passthrough+=("$1")
            shift
            ;;
    esac
done

if [ -n "$sarif_out" ]; then
    # The SARIF pass records findings but must not short-circuit the
    # human diagnostics below; the exec carries the real exit status.
    cargo run --release --frozen -q -p steelcheck -- --format sarif > "$sarif_out" || true
    echo "wrote $sarif_out"
fi

exec cargo run --release --frozen -q -p steelcheck -- ${passthrough[@]+"${passthrough[@]}"}
