#!/usr/bin/env bash
# Hermeticity gate: the workspace must build and test fully offline,
# with a committed Cargo.lock and zero registry (non-path) dependencies.
#
# Run from anywhere inside the repo:
#   scripts/check_hermetic.sh
#
# Checks:
#   1. No Cargo.toml declares a dependency that is not a `path` dep
#      (registry, git, or bare-version deps are all rejected).
#   2. Cargo.lock contains only workspace crates (no `source =` lines).
#   3. `cargo build --release --frozen` and `cargo test -q --frozen`
#      succeed — `--frozen` forbids both network access and lockfile
#      updates, so this fails fast if anything external sneaks in.
#   4. `steelcheck` (the in-repo four-layer static analysis: lexical
#      rules R1–R6 and R10, the workspace call graph, the reachability
#      rules R7–R9, and the CFG/dataflow rules R11–R13) reports zero
#      unsuppressed findings —
#      including the directive audits (`bad-directive`,
#      `unused-suppression`), so a stale or typo'd allow comment fails
#      the gate too. Prints the per-rule finding-count table for the
#      record.
#   5. Every figure binary, run under STEELWORKS_JOBS=2 (the parallel
#      scenario runner), reproduces the committed results/*.txt
#      byte-for-byte — the job count must never leak into outputs.
#      The xdpsim figures (fig4, fig4_loops) are additionally re-run
#      with XDPSIM_FORCE_INTERP=1: the default lowered engine and the
#      interpreter must produce identical bytes, or the proof-elided
#      compilation has drifted from the reference semantics.
#   6. The serving layer reproduces the same artifacts: a steelserve
#      instance on an ephemeral loopback port, with a scratch cache,
#      answers every spec in specs/ byte-identically to results/*.txt,
#      twice — a cold pass that must execute (X-Steelserve-Cache: miss)
#      and a warm pass that must not (hit). Binary, spec file, server
#      path, and cache must all agree, or the gate fails.

set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "== 1/6 Cargo.toml dependency audit =="
# Inspect every dependency-ish section of every manifest; each entry
# must carry `path = "..."` (plus optional workspace/feature keys) or
# be a `workspace = true` alias to a [workspace.dependencies] entry
# that is itself path-only (audited the same way).
while IFS= read -r manifest; do
    bad=$(awk '
        /^\[/ {
            in_dep = ($0 ~ /dependencies(\.|\])/)
            next
        }
        in_dep && /^[A-Za-z0-9_-]+[ \t]*=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/)
                print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency found:"
        echo "$bad"
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
[ "$fail" -eq 0 ] && echo "OK: all dependencies are path deps"

echo "== 2/6 Cargo.lock audit =="
if [ ! -f Cargo.lock ]; then
    echo "Cargo.lock is missing (required for --frozen builds)"
    fail=1
elif grep -q '^source = ' Cargo.lock; then
    echo "Cargo.lock references external sources:"
    grep '^source = ' Cargo.lock | sort -u
    fail=1
else
    echo "OK: Cargo.lock contains only workspace crates"
fi

if [ "$fail" -ne 0 ]; then
    echo "hermeticity audit FAILED; skipping build"
    exit 1
fi

echo "== 3/6 frozen build + test =="
# --workspace: the gate's later steps execute member binaries
# (figures, steelcheck, steelserve) that a bare root-package build
# would skip.
cargo build --release --frozen --workspace
cargo test -q --frozen --workspace

echo "== 4/6 steelcheck static analysis =="
# Text mode prints the per-rule summary table on stderr; a non-zero
# exit (any unsuppressed finding, including bad-directive and
# unused-suppression) fails the gate via set -e.
cargo run --release --frozen -q -p steelcheck
# Belt and braces: the machine report must agree that the finding list
# is empty, not merely that the exit code was zero.
if ! cargo run --release --frozen -q -p steelcheck -- --format json \
        | grep -q '"findings": \[\]'; then
    echo "steelcheck JSON report is not empty"
    exit 1
fi
echo "OK: steelcheck reports zero unsuppressed findings (stale suppressions included)"

echo "== 5/6 parallel-runner output reproducibility =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for fig in fig1 fig4 fig5 fig6 challenges fig_campus; do
    STEELWORKS_JOBS=2 "target/release/$fig" > "$tmpdir/$fig.txt"
    if ! diff -q "results/$fig.txt" "$tmpdir/$fig.txt" > /dev/null; then
        echo "$fig output differs under STEELWORKS_JOBS=2:"
        diff "results/$fig.txt" "$tmpdir/$fig.txt" | head -20
        fail=1
    fi
done
# The bounded-loop corpus rides on the fig4 binary via its additive
# `loops` spec field; the baseline above already proved the default
# spec (loops off) still reproduces the pre-corpus bytes.
STEELWORKS_JOBS=2 target/release/fig4 specs/fig4_loops.json > "$tmpdir/fig4_loops.txt"
if ! diff -q results/fig4_loops.txt "$tmpdir/fig4_loops.txt" > /dev/null; then
    echo "fig4_loops output differs under STEELWORKS_JOBS=2:"
    diff results/fig4_loops.txt "$tmpdir/fig4_loops.txt" | head -20
    fail=1
fi
# Engine cross-check: the runs above used the default lowered engine;
# pin the interpreter and demand the same bytes. This is the
# end-to-end half of the check-elision soundness argument (the
# per-program differential oracle runs under `cargo test` in step 3).
XDPSIM_FORCE_INTERP=1 STEELWORKS_JOBS=2 target/release/fig4 > "$tmpdir/fig4_interp.txt"
if ! diff -q results/fig4.txt "$tmpdir/fig4_interp.txt" > /dev/null; then
    echo "fig4 output differs between lowered and interpreter engines:"
    diff results/fig4.txt "$tmpdir/fig4_interp.txt" | head -20
    fail=1
fi
XDPSIM_FORCE_INTERP=1 STEELWORKS_JOBS=2 target/release/fig4 specs/fig4_loops.json \
    > "$tmpdir/fig4_loops_interp.txt"
if ! diff -q results/fig4_loops.txt "$tmpdir/fig4_loops_interp.txt" > /dev/null; then
    echo "fig4_loops output differs between lowered and interpreter engines:"
    diff results/fig4_loops.txt "$tmpdir/fig4_loops_interp.txt" | head -20
    fail=1
fi
[ "$fail" -eq 0 ] && echo "OK: all figure outputs byte-identical under parallel execution (both xdpsim engines)"
[ "$fail" -eq 0 ] || exit 1

echo "== 6/6 served-figure reproducibility =="
# Start a steelserve instance on an ephemeral loopback port with a
# scratch cache, then regenerate every figure through the server path:
# a cold pass where each spec must execute (X-Steelserve-Cache: miss)
# and a warm pass that must answer from the content-addressed cache
# (hit). Both must match the committed results/*.txt byte-for-byte —
# `post --expect` turns a wrong disposition into a hard failure.
serve_log="$tmpdir/steelserve.log"
target/release/steelserve serve --addr 127.0.0.1:0 --jobs 2 \
    --cache-dir "$tmpdir/cache" > "$serve_log" &
serve_pid=$!
# `|| true`: by gate's end the server has already exited via
# /shutdown, and a failed kill must not poison the exit status
# (set -e applies inside the trap).
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^steelserve listening on //p' "$serve_log")
    [ -n "$addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "steelserve died at startup:"
        cat "$serve_log"
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "steelserve never reported its listening address"
    exit 1
fi
for pass in miss hit; do
    for fig in fig1 fig4 fig4_loops fig5 fig6 challenges fig_campus; do
        target/release/steelserve post "$addr" "specs/$fig.json" \
            --expect "$pass" > "$tmpdir/served-$fig.txt"
        if ! diff -q "results/$fig.txt" "$tmpdir/served-$fig.txt" > /dev/null; then
            echo "$fig served output ($pass pass) differs from results/$fig.txt:"
            diff "results/$fig.txt" "$tmpdir/served-$fig.txt" | head -20
            fail=1
        fi
    done
done
target/release/steelserve shutdown "$addr"
wait "$serve_pid" 2>/dev/null || true
[ "$fail" -eq 0 ] && echo "OK: every figure byte-identical through the server, cold and warm"
[ "$fail" -eq 0 ] || exit 1

echo "hermetic: OK"
